"""Unit tests for the fault injector — one per injected fault kind."""

import pytest

from repro.faults import (
    CapacityLoss,
    CopyFailures,
    DaemonJitter,
    DaemonStall,
    FaultPlan,
    LockBurst,
    PmSlowdown,
    install_faults,
)
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.migrate import MigrationOutcome
from repro.sim.config import SimulationConfig
from repro.sim.events import Daemon


def make_machine(policy="static"):
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), policy)


def advance_to(machine, seconds):
    """Move virtual time to ``seconds`` and fire whatever came due."""
    target_ns = int(seconds * 1e9)
    delta = target_ns - machine.clock.now_ns
    if delta > 0:
        machine.clock.advance_app(delta)
    machine.drain_daemons()


def test_copy_failure_window_opens_and_closes():
    machine = make_machine()
    install_faults(machine, FaultPlan(seed=1, events=(
        CopyFailures(start_s=0.001, end_s=0.010, rate=1.0),
    )))
    engine = machine.system.migrator
    nodes = machine.system.nodes
    # Before the window the hook is armed but inert.
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[0]).ok
    advance_to(machine, 0.002)
    inside = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(inside, nodes[0]) is MigrationOutcome.COPY_FAILED
    assert machine.stats.get("faults.copy_failures_injected") == 1
    advance_to(machine, 0.011)
    assert engine.migrate(inside, nodes[0]).ok


def test_retry_heals_injected_failures_at_partial_rate():
    machine = make_machine()
    install_faults(machine, FaultPlan(seed=2, events=(
        CopyFailures(start_s=0.0001, end_s=10.0, rate=0.5),
    )))
    advance_to(machine, 0.001)
    engine = machine.system.migrator
    nodes = machine.system.nodes
    healed = 0
    for __ in range(50):
        page = nodes[1].allocate_page(is_anon=True)
        outcome = engine.migrate_with_retry(page, nodes[0])
        assert outcome.ok  # 10 attempts at 50% virtually never all fail
        healed += 1
    assert machine.stats.get("faults.copy_failures_injected") > 0
    assert machine.stats.get("migrate.retry_succeeded") > 0


def test_capacity_loss_window_offlines_and_restores_frames():
    machine = make_machine()
    node = machine.system.nodes[1]
    free_before = node.free_pages
    install_faults(machine, FaultPlan(seed=3, events=(
        CapacityLoss(start_s=0.001, end_s=0.010, node_id=1, frames=100),
    )))
    advance_to(machine, 0.002)
    assert node.offline_pages == 100
    assert node.free_pages == free_before - 100
    assert machine.stats.get("faults.frames_offlined") == 100
    advance_to(machine, 0.011)
    assert node.offline_pages == 0
    assert node.free_pages == free_before


def test_capacity_loss_is_capped_by_free_frames():
    machine = make_machine()
    node = machine.system.nodes[0]  # 64-frame DRAM node
    install_faults(machine, FaultPlan(seed=4, events=(
        CapacityLoss(start_s=0.001, end_s=0.010, node_id=0, frames=10_000),
    )))
    advance_to(machine, 0.002)
    assert node.offline_pages == 64
    assert node.free_pages == 0
    advance_to(machine, 0.011)
    assert node.free_pages == 64


def test_lock_burst_locks_then_releases_pages():
    machine = make_machine()
    process = machine.create_process()
    process.mmap_anon(0, 32)
    for vpage in range(32):
        machine.system.touch(process, vpage)
    install_faults(machine, FaultPlan(seed=5, events=(
        LockBurst(start_s=0.001, end_s=0.010, node_id=0, pages=8),
    )))
    advance_to(machine, 0.002)
    locked = [
        page for lst in machine.system.nodes[0].lruvec.all_lists()
        for page in lst if page.test(PageFlags.LOCKED)
    ]
    assert len(locked) == 8
    assert machine.stats.get("faults.pages_locked") == 8
    advance_to(machine, 0.011)
    still_locked = [
        page for lst in machine.system.nodes[0].lruvec.all_lists()
        for page in lst if page.test(PageFlags.LOCKED)
    ]
    assert still_locked == []


def test_pm_slowdown_scales_latency_tables_in_window():
    machine = make_machine()
    read_ns, write_ns = machine.system.hardware.access_tables()
    base_read = read_ns[MemoryTier.PM]
    base_write = write_ns[MemoryTier.PM]
    install_faults(machine, FaultPlan(seed=6, events=(
        PmSlowdown(start_s=0.001, end_s=0.010, multiplier=3.0),
    )))
    advance_to(machine, 0.002)
    assert read_ns[MemoryTier.PM] == 3 * base_read
    assert write_ns[MemoryTier.PM] == 3 * base_write
    advance_to(machine, 0.011)
    assert read_ns[MemoryTier.PM] == base_read
    assert write_ns[MemoryTier.PM] == base_write


def test_daemon_stall_suppresses_wakeups_in_window():
    machine = make_machine()
    fired = []
    machine.scheduler.register(
        Daemon("kpromoted/test", 0.001, lambda now: fired.append(now) or 0)
    )
    install_faults(machine, FaultPlan(seed=7, events=(
        DaemonStall(start_s=0.0005, end_s=0.0055, name_prefix="kpromoted"),
    )))
    advance_to(machine, 0.002)
    advance_to(machine, 0.004)
    assert fired == []  # every wakeup in the window was missed
    advance_to(machine, 0.006)
    advance_to(machine, 0.008)
    assert len(fired) >= 1  # daemon resumes after the window


def test_daemon_jitter_hook_installed_only_inside_window():
    machine = make_machine()
    install_faults(machine, FaultPlan(seed=8, events=(
        DaemonJitter(start_s=0.001, end_s=0.010, max_extra_s=0.002),
    )))
    assert machine.scheduler.jitter_hook is None
    advance_to(machine, 0.002)
    assert machine.scheduler.jitter_hook is not None
    advance_to(machine, 0.011)
    assert machine.scheduler.jitter_hook is None


def test_jitter_never_delays_protected_daemons():
    machine = make_machine()
    injector = install_faults(machine, FaultPlan(seed=9, events=(
        DaemonJitter(start_s=0.0001, end_s=10.0, max_extra_s=0.5),
    )))
    advance_to(machine, 0.001)
    edge = Daemon("fault/0/end", 1.0, lambda now: 0, one_shot=True)
    assert injector._jitter(edge) == 0
    checker = Daemon("debug_vm", 1.0, lambda now: 0)
    assert injector._jitter(checker) == 0


def test_second_install_rejected():
    machine = make_machine()
    install_faults(machine, FaultPlan(seed=1))
    with pytest.raises(RuntimeError):
        install_faults(machine, FaultPlan(seed=2))


def test_plan_round_trips_through_dict():
    plan = FaultPlan(seed=11, events=(
        CopyFailures(start_s=0.0, end_s=1.0, rate=0.3),
        LockBurst(start_s=0.1, end_s=0.2, node_id=1, pages=16),
        PmSlowdown(start_s=0.5, end_s=0.9, multiplier=2.5),
        CapacityLoss(start_s=0.2, end_s=0.4, node_id=0, frames=32),
        DaemonStall(start_s=0.3, end_s=0.6, name_prefix="kswapd"),
        DaemonJitter(start_s=0.0, end_s=1.0, max_extra_s=0.01),
    ))
    assert FaultPlan.from_dict(plan.to_dict()) == plan


@pytest.mark.parametrize("bad", [
    CopyFailures(start_s=-1.0, end_s=1.0),
    CopyFailures(start_s=1.0, end_s=1.0),
    CopyFailures(start_s=0.0, end_s=1.0, rate=0.0),
    CopyFailures(start_s=0.0, end_s=1.0, rate=1.5),
    PmSlowdown(start_s=0.0, end_s=1.0, multiplier=0.5),
    CapacityLoss(start_s=0.0, end_s=1.0, frames=0),
    LockBurst(start_s=0.0, end_s=1.0, pages=0),
    DaemonJitter(start_s=0.0, end_s=1.0, max_extra_s=0.0),
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(ValueError):
        FaultPlan(seed=1, events=(bad,)).validated()


def test_identical_seeds_inject_identically():
    def run_once():
        machine = make_machine()
        install_faults(machine, FaultPlan(seed=33, events=(
            CopyFailures(start_s=0.0001, end_s=10.0, rate=0.4),
        )))
        advance_to(machine, 0.001)
        engine = machine.system.migrator
        nodes = machine.system.nodes
        outcomes = []
        for __ in range(40):
            page = nodes[1].allocate_page(is_anon=True)
            outcomes.append(engine.migrate_with_retry(page, nodes[0]).value)
        return outcomes, machine.stats.get("faults.copy_failures_injected")

    assert run_once() == run_once()
