"""The chaos acceptance matrix: every policy survives the fault schedule.

The ISSUE's bar: a chaos run with a 20% transient migration-failure rate
plus one PM-node capacity-loss window must complete on every registered
policy with zero invariant violations and zero uncaught exceptions, and
a fixed seed must yield an identical report across two runs.
"""

import json

import pytest

from repro.faults import (
    CapacityLoss,
    CopyFailures,
    FaultPlan,
    run_chaos,
    write_report,
)
from repro.policies.base import _REGISTRY
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


def chaos_config():
    return SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=42,
    )


def acceptance_plan(seed=42):
    return FaultPlan(seed=seed, events=(
        CopyFailures(start_s=0.0005, end_s=30.0, rate=0.2),
        CapacityLoss(start_s=0.002, end_s=0.008, node_id=1, frames=512),
    ))


def workloads(ops=6000, pages=800):
    return {"zipf": lambda: ZipfWorkload(pages, ops, seed=42)}


@pytest.mark.parametrize("policy", sorted(_REGISTRY))
def test_every_policy_survives_the_acceptance_schedule(policy):
    report = run_chaos([policy], workloads(), acceptance_plan(), chaos_config())
    (cell,) = report.cells
    assert cell.completed, cell.error
    assert cell.error == ""
    assert cell.violations == 0, cell.violation_details
    assert cell.counters["debug_vm.checks"] > 0
    assert cell.clean


def test_fault_schedule_actually_fires_on_multiclock():
    """Guard against a vacuous pass: the plan must really disturb the run."""
    report = run_chaos(["multiclock"], workloads(), acceptance_plan(), chaos_config())
    (cell,) = report.cells
    assert cell.counters["faults.windows_opened"] == 2
    assert cell.counters["faults.copy_failures_injected"] > 0
    assert cell.counters["faults.frames_offlined"] > 0
    assert cell.counters["migrate.retries"] > 0
    assert cell.counters["migrate.retry_succeeded"] > 0


def test_same_seed_yields_bit_identical_reports():
    def one_report():
        report = run_chaos(
            ["multiclock", "static"], workloads(ops=4000, pages=600),
            acceptance_plan(seed=7), chaos_config(),
        )
        return json.dumps(report.to_dict(), sort_keys=True)

    assert one_report() == one_report()


def test_report_file_is_deterministic(tmp_path):
    paths = []
    for i in range(2):
        report = run_chaos(
            ["static"], workloads(ops=2000, pages=400),
            acceptance_plan(), chaos_config(),
        )
        path = tmp_path / f"report{i}.json"
        write_report(report, str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    data = json.loads(paths[0].read_text())
    assert data["all_clean"] is True
    assert data["plan"]["seed"] == 42
    assert data["cells"][0]["policy"] == "static"
