"""Determinism property 3, across process boundaries.

The parallel chaos merge rests on CHAOS_report.json being a pure
function of (plan, matrix, config) — including when the run happens in
a *fresh interpreter* (different hash seed, import order, allocator
state).  This pins that: a subprocess run must produce bytes identical
to an in-process run, and to a second subprocess run.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

SCRIPT = """
import sys
from repro.faults import FaultPlan, run_chaos, write_report
from repro.faults.plan import CapacityLoss, CopyFailures
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

config = SimulationConfig(
    dram_pages=(256,),
    pm_pages=(2048,),
    daemons=DaemonConfig(
        kpromoted_interval_s=0.002,
        kswapd_interval_s=0.001,
        hint_scan_interval_s=0.002,
    ),
    seed=42,
)
plan = FaultPlan(seed=7, events=(
    CopyFailures(start_s=0.0005, end_s=30.0, rate=0.2),
    CapacityLoss(start_s=0.002, end_s=0.008, node_id=1, frames=512),
))
report = run_chaos(
    ["multiclock", "static"],
    {"zipf": lambda: ZipfWorkload(400, 2500, seed=42)},
    plan,
    config,
)
write_report(report, sys.argv[1])
"""


def run_in_fresh_interpreter(out_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", SCRIPT, str(out_path)],
        check=True, env=env, timeout=300,
    )


def run_in_this_interpreter(out_path):
    from repro.faults import FaultPlan, run_chaos, write_report
    from repro.faults.plan import CapacityLoss, CopyFailures
    from repro.sim.config import DaemonConfig, SimulationConfig
    from repro.workloads.synthetic import ZipfWorkload

    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=42,
    )
    plan = FaultPlan(seed=7, events=(
        CopyFailures(start_s=0.0005, end_s=30.0, rate=0.2),
        CapacityLoss(start_s=0.002, end_s=0.008, node_id=1, frames=512),
    ))
    report = run_chaos(
        ["multiclock", "static"],
        {"zipf": lambda: ZipfWorkload(400, 2500, seed=42)},
        plan,
        config,
    )
    write_report(report, str(out_path))


def test_chaos_report_is_bit_identical_across_interpreters(tmp_path):
    first = tmp_path / "sub1.json"
    second = tmp_path / "sub2.json"
    run_in_fresh_interpreter(first)
    run_in_fresh_interpreter(second)
    assert first.read_bytes() == second.read_bytes()

    # ... and identical to the same matrix (same literals as SCRIPT)
    # run in *this* interpreter.
    local = tmp_path / "local.json"
    run_in_this_interpreter(local)
    assert local.read_bytes() == first.read_bytes()
