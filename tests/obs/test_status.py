"""The live status sidecar: atomic rewrites, throttling, the reader's
operator errors, and both render styles."""

import json
import os

import pytest

from repro.obs import (
    MIN_REWRITE_INTERVAL_S,
    StatusBoard,
    read_status,
    render_prometheus,
    render_top,
)


def test_board_writes_a_complete_snapshot_on_construction(tmp_path):
    path = str(tmp_path / "s.status.json")
    StatusBoard(path, total=10, spec="repro-sweep", trace="abc")
    status = read_status(path)
    assert status["state"] == "running"
    assert status["total"] == 10
    assert status["trace"] == "abc"
    assert status["cells"]["pending"] == 10


def test_updates_throttle_but_transitions_force(tmp_path):
    path = str(tmp_path / "s.status.json")
    board = StatusBoard(path, total=4, spec="x")
    before = os.stat(path).st_mtime_ns
    # Immediately after construction the rewrite floor applies.
    board.update(counts={"done": 1})
    assert os.stat(path).st_mtime_ns == before
    assert MIN_REWRITE_INTERVAL_S > 0
    board.update(counts={"done": 2}, force=True)
    assert read_status(path)["cells"]["done"] == 2


def test_finish_is_terminal_and_idempotent(tmp_path):
    path = str(tmp_path / "s.status.json")
    board = StatusBoard(path, total=2, spec="x")
    board.finish("interrupted")
    board.finish("done")  # too late: first terminal state wins
    status = read_status(path)
    assert status["state"] == "interrupted"
    assert status["cells"]["pending"] == 0 and status["cells"]["leased"] == 0


def test_no_tmp_litter_and_always_valid_json(tmp_path):
    path = str(tmp_path / "s.status.json")
    board = StatusBoard(path, total=100, spec="x")
    for i in range(50):
        board.update(counts={"done": i}, force=True)
        json.loads(open(path, encoding="utf-8").read())  # never torn
    leftovers = [p for p in os.listdir(tmp_path) if p != "s.status.json"]
    assert leftovers == []


@pytest.mark.parametrize("prepare,fragment", [
    (lambda p: None, "status file not found"),
    (lambda p: p.write_text("{torn", encoding="utf-8"), "unreadable"),
    (lambda p: p.write_text("[1, 2]", encoding="utf-8"),
     "not a sweep status file"),
])
def test_read_status_operator_errors_are_one_line(tmp_path, prepare, fragment):
    path = tmp_path / "s.status.json"
    prepare(path)
    with pytest.raises(ValueError) as excinfo:
        read_status(str(path))
    message = str(excinfo.value)
    assert fragment in message and "\n" not in message


def test_render_top_shows_bar_counts_and_hosts(tmp_path):
    path = str(tmp_path / "s.status.json")
    board = StatusBoard(path, total=8, spec="repro-sweep")
    board.update(
        pending=2, leased=2, counts={"done": 3, "failed": 1},
        hosts={"loop#0": {"state": "ready", "busy": 2, "done": 3,
                          "failed": 1, "reconnects": 0,
                          "heartbeat_age_s": 0.4, "workers": 2}},
        force=True,
    )
    text = render_top(read_status(path))
    assert "4/8" in text
    assert "#" in text and "x" in text  # done and failed bar segments
    assert "loop#0" in text and "0.4s" in text


def test_render_prometheus_exposes_cells_and_host_heartbeat(tmp_path):
    path = str(tmp_path / "s.status.json")
    board = StatusBoard(path, total=8, spec="repro-sweep")
    board.update(
        counts={"done": 3},
        hosts={"loop#0": {"state": "ready", "busy": 1, "done": 3,
                          "failed": 0, "reconnects": 0,
                          "heartbeat_age_s": 0.25, "workers": 2}},
        force=True,
    )
    text = render_prometheus(read_status(path))
    assert 'repro_sweep_cells{state="done"} 3' in text
    assert "repro_sweep_total 8" in text
    assert 'repro_sweep_host_heartbeat_age_s{host="loop#0"} 0.25' in text
