"""The journal consumers: wall-time attribution (fold_profile) and the
Chrome trace-event export (timeline_records)."""

import math

from repro.obs import (
    Journal,
    fold_profile,
    read_journal,
    render_profile,
    timeline_records,
)


def synthetic_sweep_journal(path):
    """A hand-timed two-host sweep: exact phase boundaries, one cache
    hit, one remote cell, one local cell."""
    journal = Journal(path)
    sweep = journal.begin("sweep", t=100.0, cells=2)
    prep = journal.begin("prepare", t=100.0)
    journal.end(prep, t=100.5)
    connect = journal.begin("ssh.connect", t=100.5, host="h1")
    journal.end(connect, t=101.0, ok=True)
    dispatch = journal.begin("dispatch", t=101.0, host="h1", cell="c1")
    journal.end(dispatch, t=101.1, ok=True)
    lease = journal.begin("lease", t=101.0, host="h1", cell="c1", lease="L1")
    journal.record_remote("h1", [
        {"ev": "begin", "span": "cell.run", "sid": "a1",
         "actor": "worker/42", "cell": "c1", "lease": "L1", "t": 101.2},
        {"ev": "end", "span": "cell.run", "sid": "a1",
         "actor": "worker/42", "cell": "c1", "lease": "L1", "t": 102.2,
         "fields": {"ok": True}},
    ])
    journal.end(lease, t=102.5, outcome="result", ok=True)
    journal.point("cell.cache_hit", t=102.5, cell="c2", key="k")
    journal.point("commit", t=102.5, cell="c2", ok=True)
    journal.point("commit", t=102.5, cell="c1", ok=True)
    journal.point("heartbeat", t=102.0, actor="driver", host="h1")
    merge = journal.begin("merge", t=102.5)
    journal.end(merge, t=103.0)
    journal.end(sweep, t=103.0, state="done")
    journal.close()
    return read_journal(path)


def test_fold_profile_partitions_the_wall_exactly(tmp_path):
    events = synthetic_sweep_journal(str(tmp_path / "j.ndjson"))
    profile = fold_profile(events)

    assert math.isclose(profile["wall_s"], 3.0)
    assert profile["coverage"] >= 0.95  # the acceptance-criteria floor
    phases = profile["phases"]
    assert math.isclose(sum(phases.values()), profile["wall_s"],
                        rel_tol=1e-9)
    assert math.isclose(phases["prepare_s"], 0.5)
    assert math.isclose(phases["connect_s"], 0.5)  # prep end → first lease
    assert math.isclose(phases["execute_s"], 1.5)  # lease window
    assert math.isclose(phases["merge_s"], 0.5)


def test_fold_profile_attribution_and_counts(tmp_path):
    events = synthetic_sweep_journal(str(tmp_path / "j.ndjson"))
    profile = fold_profile(events)

    attribution = profile["attribution"]
    assert math.isclose(attribution["worker_compute_s"], 1.0)
    # Lease held 1.5s, worker computed 1.0s: 0.5s of wire/scheduling tax.
    assert math.isclose(attribution["envelope_tax_s"], 0.5)
    assert math.isclose(attribution["ssh_connect_s"], 0.5)
    assert math.isclose(attribution["dispatch_s"], 0.1)
    assert math.isclose(attribution["merge_s"], 0.5)

    counts = profile["counts"]
    assert counts["cell_runs"] == 1 and counts["cell_runs_aborted"] == 0
    assert counts["leases"] == 1 and counts["leases_matched"] == 1
    assert counts["commits"] == 2
    assert counts["cache_hits"] == 1
    assert counts["heartbeats"] == 1


def test_fold_profile_survives_an_empty_journal():
    profile = fold_profile([])
    assert profile["wall_s"] == 0.0
    assert profile["counts"]["commits"] == 0


def test_render_profile_is_a_text_table(tmp_path):
    events = synthetic_sweep_journal(str(tmp_path / "j.ndjson"))
    text = render_profile(fold_profile(events))
    assert "sweep wall time 3.000s" in text
    assert "worker_compute" in text
    assert "2 commit(s)" in text


def test_timeline_lanes_group_actors_by_process(tmp_path):
    events = synthetic_sweep_journal(str(tmp_path / "j.ndjson"))
    records, lanes = timeline_records(events)

    assert lanes == 2  # driver + host/h1 (worker rides as a thread)
    meta = [r for r in records if r["ph"] == "M"]
    process_names = {r["args"]["name"] for r in meta
                     if r["name"] == "process_name"}
    assert process_names == {"driver", "host/h1"}
    thread_names = {r["args"]["name"] for r in meta
                    if r["name"] == "thread_name"}
    assert "worker 42" in thread_names


def test_timeline_span_phases_and_rebased_timestamps(tmp_path):
    events = synthetic_sweep_journal(str(tmp_path / "j.ndjson"))
    records, _ = timeline_records(events)

    slices = [r for r in records if r["ph"] == "X"]
    assert {r["name"].split()[0] for r in slices} >= {
        "sweep", "prepare", "ssh.connect", "cell.run", "merge"}
    # Leases overlap on the driver lane, so they export as async pairs.
    async_phs = {r["ph"] for r in records if r.get("cat") == "lease"}
    assert async_phs == {"b", "e"}
    instants = [r for r in records if r["ph"] == "i"]
    assert any(r["name"].startswith("commit") for r in instants)
    # Rebased to the first event and scaled to microseconds.
    assert min(r["ts"] for r in records if "ts" in r) == 0.0
    sweep_slice = next(r for r in slices if r["name"] == "sweep")
    assert math.isclose(sweep_slice["dur"], 3.0 * 1_000_000)


def test_timeline_of_nothing_is_empty():
    assert timeline_records([]) == ([], 0)
