"""The structured events must render to the exact narration strings the
pre-journal schedulers printed — operators and fault tests grep them."""

from repro.obs import EVENT_FORMATTERS, render_event


def test_redispatch_renders_the_grepped_line():
    line = render_event("cell.redispatch", {"cell": "c3", "host": "loop#1"})
    assert line == "c3: host loop#1 lost mid-cell; re-dispatching"


def test_degraded_renders_the_grepped_line():
    line = render_event("sweep.degraded", {"hosts": 2, "cells": 5})
    assert line == ("all 2 host(s) lost; degrading to the local pool "
                    "for 5 cell(s)")


def test_cache_hit_has_both_prose_forms():
    assert render_event(
        "cell.cache_hit",
        {"cell": "c1", "key": "abc123", "when": "redispatch",
         "done": 3, "total": 9},
    ) == "[3/9] c1: served from result cache (abc123)"
    assert render_event(
        "cell.cache_hit", {"cell": "c1", "key": "abc123"},
    ) == "c1: cache hit (abc123)"


def test_done_renders_with_and_without_host():
    fields = {"cell": "c1", "done": 2, "total": 4, "attempt": 1}
    assert render_event("cell.done", fields) == "[2/4] c1: done (attempt 1)"
    assert render_event("cell.done", {**fields, "host": "h0"}) == \
        "[2/4] c1: done on h0 (attempt 1)"


def test_host_lifecycle_lines():
    assert render_event("host.ready", {"host": "h0", "workers": 2}) == \
        "host h0: ready (2 worker(s))"
    assert render_event(
        "host.lost",
        {"host": "h0", "reason": "heartbeat silence", "attempt": 1,
         "limit": 2, "delay_s": 0.5},
    ) == "host h0: lost (heartbeat silence); reconnect 1/2 in 0.50s"
    assert render_event("host.dead", {"host": "h0", "reason": "eof"}) == \
        "host h0: dead (eof)"


def test_unknown_event_renders_to_none():
    assert render_event("cell.telepathy", {"cell": "c1"}) is None


def test_malformed_fields_degrade_to_repr_not_a_crash():
    line = render_event("cell.done", {"cell": "c1"})  # missing done/total
    assert line is not None and "cell.done" in line and "c1" in line


def test_every_formatter_is_total_over_its_event():
    """Smoke: each formatter accepts a plausible field dict (the emit
    sites in pool.py/remote.py are the source of truth for shapes)."""
    samples = {
        "cell.resumed": {"cell": "c", "attempts": 1},
        "cell.cache_hit": {"cell": "c", "key": "k"},
        "cell.done": {"cell": "c", "done": 1, "total": 2, "attempt": 1},
        "cell.retry": {"cell": "c", "attempt": 1, "error": "boom"},
        "cell.failed": {"cell": "c", "done": 1, "total": 2, "attempt": 3,
                        "error": "boom"},
        "cell.interrupted": {"cell": "c"},
        "cell.redispatch": {"cell": "c", "host": "h"},
        "cell.duplicate": {"cell": "c", "host": "h"},
        "cell.straggler": {"cell": "c", "host": "h", "elapsed_s": 1.0,
                           "to": "h2"},
        "host.ready": {"host": "h", "workers": 1},
        "host.lost": {"host": "h", "reason": "r", "attempt": 1, "limit": 1,
                      "delay_s": 0.1},
        "host.dead": {"host": "h", "reason": "r"},
        "sweep.degraded": {"hosts": 1, "cells": 1},
    }
    assert set(samples) == set(EVENT_FORMATTERS)
    for event, fields in samples.items():
        line = render_event(event, fields)
        assert isinstance(line, str) and "{" not in line
