"""Unit tests for the span journal: pairing, synthetic ends, remote
event stitching, and the tolerant reader."""

import json

from repro.obs import Journal, pair_spans, read_journal


def test_begin_end_pairing_merges_fields(tmp_path):
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    sid = journal.begin("lease", cell="c1", lease="L1", attempt=1)
    journal.end(sid, outcome="result", ok=True)
    journal.close()

    spans = pair_spans(read_journal(path))
    assert len(spans) == 1
    span = spans[0]
    assert span.span == "lease" and span.cell == "c1" and span.lease == "L1"
    assert span.complete and not span.aborted
    assert span.fields == {"attempt": 1, "outcome": "result", "ok": True}
    assert span.t1 >= span.t0


def test_every_line_carries_trace_and_monotonic_seq(tmp_path):
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    sid = journal.begin("sweep")
    journal.point("heartbeat", host="h1")
    journal.end(sid)
    journal.close()

    events = read_journal(path)
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
    assert {e["trace"] for e in events} == {journal.trace_id}


def test_close_synthesises_aborted_ends(tmp_path):
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    journal.begin("sweep")
    journal.begin("cell.run", actor="worker/local/1", cell="c1")
    journal.close()
    journal.close()  # idempotent

    spans = pair_spans(read_journal(path))
    assert len(spans) == 2
    assert all(s.complete for s in spans)
    assert all(s.aborted for s in spans)


def test_end_is_noop_for_unknown_or_settled_sids(tmp_path):
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    sid = journal.begin("lease", cell="c1")
    journal.end(sid, outcome="result")
    journal.end(sid, outcome="host-lost")  # second settle: dropped
    journal.end("nope")
    journal.end(None)
    journal.close()

    events = read_journal(path)
    assert sum(1 for e in events if e["ev"] == "end") == 1


def test_record_remote_namespaces_actors_and_sids(tmp_path):
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    journal.record_remote("loopback#0", [
        {"ev": "begin", "span": "cell.run", "sid": "a1",
         "actor": "worker/4711", "cell": "c1", "t": 1.0},
        {"ev": "end", "span": "cell.run", "sid": "a1",
         "actor": "worker/4711", "cell": "c1", "t": 2.0},
        {"ev": "point", "span": "note", "sid": "", "actor": "agent",
         "t": 2.5},
        "not-an-event", {"ev": "bogus"},  # ignored, never a crash
    ])
    journal.close()

    events = read_journal(path)
    assert len(events) == 3
    begin, end, point = events
    assert begin["actor"] == end["actor"] == "worker/loopback#0/4711"
    assert begin["sid"] == end["sid"] == "loopback#0/a1"
    assert point["actor"] == "host/loopback#0"


def test_remote_begin_without_end_gets_synthetic_abort(tmp_path):
    """A SIGKILLed agent ships its begin but never the end; the driver's
    close must still leave a pairable journal."""
    path = str(tmp_path / "j.ndjson")
    journal = Journal(path)
    journal.record_remote("h1", [
        {"ev": "begin", "span": "cell.run", "sid": "a1",
         "actor": "worker/99", "cell": "killer", "t": 1.0},
    ])
    journal.close()

    spans = pair_spans(read_journal(path))
    assert len(spans) == 1
    assert spans[0].complete and spans[0].aborted
    assert spans[0].cell == "killer"


def test_read_journal_tolerates_missing_and_torn_files(tmp_path):
    assert read_journal(str(tmp_path / "absent.ndjson")) == []

    path = tmp_path / "torn.ndjson"
    good = json.dumps({"ev": "point", "span": "note", "sid": "", "t": 1.0})
    path.write_text(good + "\n" + '{"ev": "point", "spa', encoding="utf-8")
    events = read_journal(str(path))
    assert len(events) == 1  # the torn tail is skipped, never an error


def test_pair_spans_keeps_incomplete_spans_visible():
    spans = pair_spans([
        {"ev": "begin", "span": "lease", "sid": "d1", "actor": "driver",
         "t": 1.0},
    ])
    assert len(spans) == 1
    assert not spans[0].complete
    assert spans[0].duration == 0.0
