"""End-to-end observability under faults: span stitching across a
SIGKILLed agent, the begin-has-end guarantee under SIGINT, and the
journal-off byte-identity contract of SWEEP_report.json."""

import json
import os
import signal
import sys
import threading
import time

import pytest

from repro.obs import (
    Journal,
    SweepObserver,
    pair_spans,
    read_journal,
    timeline_records,
)
from repro.sweep import (
    SweepCell,
    SweepInterrupted,
    SweepSpec,
    run_remote_sweep,
    run_sweep,
)


def sleepy_cells(n, prefix="c", sleep_s=0.05):
    return [
        SweepCell(f"{prefix}{i}", "flaky",
                  {"mode": "sleep", "sleep_s": sleep_s, "payload": f"p{i}"})
        for i in range(n)
    ]


def armed_observer(tmp_path):
    journal = Journal(str(tmp_path / "sweep.journal.ndjson"))
    return SweepObserver(journal=journal), journal.path


def test_killed_agent_spans_stitch_onto_one_timeline(tmp_path):
    """SIGKILL one agent mid-cell: the journal must hold two cell.run
    spans sharing the cell's correlation id (the aborted one on the dead
    host, the completed re-run elsewhere) and exactly one commit."""
    marker = str(tmp_path / "killed.marker")
    cells = sleepy_cells(8)
    cells.insert(3, SweepCell("killer", "flaky",
                              {"mode": "kill-agent", "marker": marker,
                               "payload": "recovered"}))
    spec = SweepSpec("stitch", tuple(cells))
    obs, journal_path = armed_observer(tmp_path)
    remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.3,
                              reconnect_attempts=2, obs=obs)
    obs.close("done")
    assert remote.ok

    events = read_journal(journal_path)
    runs = [s for s in pair_spans(events)
            if s.span == "cell.run" and s.cell == "killer"]
    assert len(runs) >= 2
    assert all(s.complete for s in runs)  # close() pairs even the lost one
    assert any(s.aborted for s in runs)
    assert any(not s.aborted for s in runs)
    commits = [e for e in events
               if e["ev"] == "point" and e["span"] == "commit"
               and e.get("cell") == "killer"]
    assert len(commits) == 1

    # The merged timeline shows the whole fleet: driver + both hosts.
    _records, lanes = timeline_records(events)
    assert lanes >= 3


def test_one_commit_per_cell_even_with_duplicates(tmp_path):
    """At-most-once, observed: every cell commits exactly once no matter
    how many times straggler duplication or host loss re-ran it."""
    marker = str(tmp_path / "killed.marker")
    cells = sleepy_cells(6)
    cells.insert(2, SweepCell("killer", "flaky",
                              {"mode": "kill-agent", "marker": marker,
                               "payload": "recovered"}))
    spec = SweepSpec("once", tuple(cells))
    obs, journal_path = armed_observer(tmp_path)
    remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.3,
                              reconnect_attempts=2, obs=obs)
    obs.close("done")
    assert remote.ok

    commits = {}
    for event in read_journal(journal_path):
        if event["ev"] == "point" and event["span"] == "commit":
            commits[event["cell"]] = commits.get(event["cell"], 0) + 1
    assert commits == {cell.id: 1 for cell in spec.cells}


def test_every_begin_has_an_end_even_on_sigint(tmp_path):
    """Property: whatever SIGINT interrupts, a closed journal pairs —
    every begin sid has exactly one end sid (synthetic ends count)."""
    cells = tuple(
        SweepCell(f"s{i}", "flaky",
                  {"mode": "sleep", "sleep_s": 0.4, "payload": f"p{i}"})
        for i in range(4)
    )
    spec = SweepSpec("interruptible", cells)
    obs, journal_path = armed_observer(tmp_path)

    def interrupt_soon():
        time.sleep(0.6)
        os.kill(os.getpid(), signal.SIGINT)

    threading.Thread(target=interrupt_soon, daemon=True).start()
    with pytest.raises(SweepInterrupted):
        run_sweep(spec, workers=1, obs=obs)
    obs.close("interrupted")  # what _cmd_sweep does on the way out

    events = read_journal(journal_path)
    begins = [e["sid"] for e in events if e["ev"] == "begin"]
    ends = [e["sid"] for e in events if e["ev"] == "end"]
    assert sorted(begins) == sorted(ends)
    assert len(set(begins)) == len(begins)
    interrupted = [s for s in pair_spans(events) if s.span == "sweep"]
    assert interrupted[0].fields.get("state") == "interrupted"


SWEEP_ARGS = [
    "sweep", "--policies", "static", "--workloads", "uniform",
    "--seeds", "1,2", "--workers", "2", "--no-cache",
    "--dram-pages", "64", "--pm-pages", "256",
    "--ops", "200", "--pages", "64",
]


def test_journal_off_report_is_byte_identical(tmp_path):
    """The whole observability plane must be invisible when off: the
    armed report minus its timing/profile sections re-serialises to the
    exact bytes the journal-off run wrote."""
    from repro.cli import main

    armed = str(tmp_path / "armed.json")
    plain = str(tmp_path / "plain.json")
    assert main(SWEEP_ARGS + ["--out", armed, "--journal"]) == 0
    assert main(SWEEP_ARGS + ["--out", plain]) == 0

    with open(armed, encoding="utf-8") as fh:
        report = json.load(fh)
    timing = report.pop("timing")
    profile = report.pop("profile")
    stripped = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(plain, "rb") as fh:
        assert fh.read() == stripped.encode("utf-8")

    # The sections the journal bought: per-attempt timing rows sorted by
    # (cell, attempt), and a profile covering ≥95% of the wall.
    assert [r["cell"] for r in timing] == sorted(r["cell"] for r in timing)
    assert all(r["outcome"] == "done" and r["wall_s"] > 0 for r in timing)
    assert profile["coverage"] >= 0.95
    assert os.path.exists(f"{armed}.journal.ndjson")
    assert not os.path.exists(f"{plain}.journal.ndjson")
    assert not os.path.exists(f"{plain}.status.json")


def test_top_and_timeline_cli_round_trip(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "S.json")
    assert main(SWEEP_ARGS + ["--out", out, "--journal"]) == 0
    capsys.readouterr()

    assert main(["top", out, "--once"]) == 0
    top = capsys.readouterr().out
    assert "2/2" in top and "done 2" in top

    assert main(["top", out, "--prometheus"]) == 0
    prom = capsys.readouterr().out
    assert 'repro_sweep_cells{state="done"} 2' in prom

    assert main(["timeline", out]) == 0
    line = capsys.readouterr().out
    assert "lane(s)" in line
    trace_path = f"{out}.journal.ndjson.trace.json"
    with open(trace_path, encoding="utf-8") as fh:
        trace = json.load(fh)
    assert trace["traceEvents"]


def test_top_exits_cleanly_when_the_pipe_closes(tmp_path, monkeypatch):
    """`repro top --once | grep -q ...` closes the pipe after the first
    match; the EPIPE must map to a clean exit 0, not a traceback."""
    from repro.cli import main
    from repro.obs import StatusBoard

    board = StatusBoard(str(tmp_path / "S.json.status.json"),
                        total=2, spec="s", trace="t")
    board.finish("done")

    read_end, write_end = os.pipe()
    os.close(read_end)  # every flushed write now raises BrokenPipeError
    with os.fdopen(write_end, "w", buffering=1) as dead_pipe:
        monkeypatch.setattr(sys, "stdout", dead_pipe)
        assert main(["top", str(tmp_path / "S.json"), "--once"]) == 0


def test_top_without_status_file_is_an_operator_error(tmp_path, capsys):
    from repro.cli import main

    code = main(["top", str(tmp_path / "nope.json"), "--once"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: status file not found")
    assert err.count("\n") == 1


def test_timeline_without_journal_is_an_operator_error(tmp_path, capsys):
    from repro.cli import main

    code = main(["timeline", str(tmp_path / "nope.json")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: no journal events")
