"""Unit tests for the Fig 2 window analysis."""

import pytest

from repro.analysis.windows import analyze_windows
from repro.workloads.motivation import MotivationWorkload


def test_empty_trace():
    analysis = analyze_windows(iter([]))
    assert analysis.pairs == ()
    assert analysis.multi_over_single_ratio == 1.0


def test_invalid_window_size():
    with pytest.raises(ValueError):
        analyze_windows(iter([(0, 1)]), segments_per_window=0)


def test_single_vs_multi_classification():
    # Window 0: page 1 once, page 2 three times. Window 1: both again.
    trace = [(0, 1), (0, 2), (0, 2), (0, 2), (1, 1), (1, 2), (1, 2)]
    analysis = analyze_windows(iter(trace), segments_per_window=1)
    pair = analysis.pairs[0]
    assert pair.single_pages == 1
    assert pair.multi_pages == 1
    assert pair.single_mean_future == 1.0
    assert pair.multi_mean_future == 2.0


def test_pages_absent_from_future_count_zero():
    trace = [(0, 1), (0, 1), (1, 9)]
    analysis = analyze_windows(iter(trace), segments_per_window=1)
    assert analysis.pairs[0].multi_mean_future == 0.0


def test_all_adjacent_pairs_analyzed():
    trace = [(s, s) for s in range(6)]
    analysis = analyze_windows(iter(trace), segments_per_window=1)
    assert len(analysis.pairs) == 5


def test_paper_conclusion_on_motivation_workloads():
    """Multi-access pages must show materially higher future frequency on
    every motivation profile — the basis of MULTI-CLOCK's hypothesis."""
    for profile in ("rubis", "specpower", "xalan", "lusearch"):
        workload = MotivationWorkload(profile, pages=500, segments=12, ops_per_segment=4000)
        analysis = analyze_windows(workload.trace(), workload=profile)
        assert analysis.multi_over_single_ratio > 1.5, profile


def test_render_mentions_aggregate():
    workload = MotivationWorkload("rubis", pages=200, segments=4, ops_per_segment=500)
    analysis = analyze_windows(workload.trace(), workload="rubis")
    assert "aggregate" in analysis.render()
