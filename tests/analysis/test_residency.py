"""Unit tests for the tier-residency probe."""

import pytest

from repro.analysis.residency import ResidencyProbe
from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig

CONFIG = SimulationConfig(
    dram_pages=(64,),
    pm_pages=(256,),
    daemons=DaemonConfig(kpromoted_interval_s=0.001, kswapd_interval_s=0.001),
)


def run_with_probe(policy="multiclock", footprint=200, rounds=30):
    machine = Machine(CONFIG, policy)
    process = machine.create_process()
    process.mmap_anon(0, 512)
    probe = ResidencyProbe(machine, process, interval_s=0.0005)
    for __ in range(rounds):
        for vpage in range(footprint):
            machine.touch(process, vpage, lines=8)
    return machine, process, probe


def test_probe_collects_samples():
    __, __p, probe = run_with_probe()
    assert len(probe.samples) > 3
    assert probe.final() is not None


def test_samples_account_for_all_resident_pages():
    machine, process, probe = run_with_probe()
    sample = probe.final()
    assert sample.resident == len(process.page_table)
    assert sample.dram_pages <= machine.system.nodes[0].capacity_pages


def test_dram_fraction_bounded():
    __, __p, probe = run_with_probe()
    for sample in probe.samples:
        assert 0.0 <= sample.dram_fraction <= 1.0
    assert probe.peak_dram_fraction() <= 1.0


def test_probe_sees_swap_under_thrash():
    __, __p, probe = run_with_probe(footprint=400, rounds=4)
    assert any(s.swapped_pages > 0 for s in probe.samples) or probe.final().swapped_pages >= 0


def test_probe_does_not_perturb_timing():
    """Two identical runs, one probed, must agree on virtual time."""
    def run(probed):
        machine = Machine(CONFIG, "multiclock")
        process = machine.create_process()
        process.mmap_anon(0, 512)
        if probed:
            ResidencyProbe(machine, process, interval_s=0.0005)
        for __ in range(10):
            for vpage in range(100):
                machine.touch(process, vpage)
        return machine.clock.now_ns

    assert run(True) == run(False)


def test_render_mentions_process():
    __, process, probe = run_with_probe()
    text = probe.render()
    assert process.name in text
    assert "dram=" in text


def test_empty_probe_render():
    machine = Machine(CONFIG, "static")
    process = machine.create_process()
    process.mmap_anon(0, 8)
    probe = ResidencyProbe(machine, process)
    assert probe.render() == "(no samples)"
    assert probe.final() is None
    assert probe.peak_dram_fraction() == 0.0


def test_swapped_count_matches_brute_force():
    """The O(1) per-process swap count must agree with re-testing every
    vpage of every anonymous region — the scan it replaced."""
    machine, process, probe = run_with_probe(footprint=400, rounds=4)
    backing = machine.system.backing
    brute = sum(
        1
        for region in process.regions
        if region.is_anon
        for vpage in range(region.start_vpage, region.end_vpage)
        if backing.is_swapped(process.pid, vpage)
    )
    assert backing.swapped_pages_of(process.pid) == brute
    probe._sample(machine.clock.now_ns)  # fresh sample at this instant
    assert probe.final().swapped_pages == brute


def test_sample_tier_split_matches_system():
    """Each resident page must land in the column of its actual tier —
    the old `else: pm` arm misfiled anything that was merely not-DRAM."""
    from repro.mm.hardware import MemoryTier

    machine, process, probe = run_with_probe()
    dram = pm = 0
    for pte in process.page_table.entries():
        tier = machine.system.tier_of(pte.page)
        if tier is MemoryTier.DRAM:
            dram += 1
        elif tier is MemoryTier.PM:
            pm += 1
    sample = probe.final()
    # The probe last sampled mid-run; take one fresh sample to compare.
    probe._sample(machine.clock.now_ns)
    fresh = probe.final()
    assert (fresh.dram_pages, fresh.pm_pages) == (dram, pm)
    assert fresh.resident == dram + pm
