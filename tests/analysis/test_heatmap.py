"""Unit tests for the Fig 1 heatmap analysis."""

import numpy as np

from repro.analysis.heatmap import Heatmap, build_heatmap
from repro.workloads.motivation import MotivationWorkload


def make_workload(profile="rubis"):
    return MotivationWorkload(profile, pages=400, segments=8, ops_per_segment=3000)


def test_build_heatmap_shape():
    heatmap = build_heatmap(make_workload(), n_sampled=30)
    assert heatmap.counts.shape == (30, 8)
    assert len(heatmap.sampled_pages) == 30
    assert (np.diff(heatmap.sampled_pages) > 0).all()  # ascending ids


def test_sampling_capped_at_population():
    workload = MotivationWorkload("rubis", pages=20, segments=2, ops_per_segment=100)
    heatmap = build_heatmap(workload, n_sampled=50)
    assert len(heatmap.sampled_pages) == 20


def test_all_three_classes_observed():
    """The paper's core observation: DRAM-friendly, Tier-friendly and
    rare pages all appear among the sampled rows."""
    heatmap = build_heatmap(make_workload(), n_sampled=50)
    counts = heatmap.class_counts()
    assert counts["dram_friendly"] > 0
    assert counts["tier_friendly"] > 0
    assert counts["rare"] > 0


def test_row_class_pure_cases():
    counts = np.array(
        [
            [10, 11, 9, 10],  # steady hot
            [0, 25, 0, 0],  # bursty
            [0, 1, 0, 0],  # rare
        ]
    )
    heatmap = Heatmap("synthetic", np.array([1, 2, 3]), counts)
    assert heatmap.row_class(0) == "dram_friendly"
    assert heatmap.row_class(1) == "tier_friendly"
    assert heatmap.row_class(2) == "rare"


def test_render_contains_every_row():
    heatmap = build_heatmap(make_workload(), n_sampled=10)
    text = heatmap.render()
    assert text.count("|") == 20  # two delimiters per row
    assert "rubis" in text


def test_deterministic():
    a = build_heatmap(make_workload(), n_sampled=25)
    b = build_heatmap(make_workload(), n_sampled=25)
    assert np.array_equal(a.counts, b.counts)
