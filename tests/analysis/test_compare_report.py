"""Unit tests for comparison normalization and ASCII reporting."""

import pytest

from repro.analysis.compare import normalize_exec_time, normalize_throughput
from repro.analysis.report import render_bars, render_series, render_table
from repro.run import RunResult
from repro.sim.stats import WindowPoint


def result(policy, ops, elapsed_ns):
    return RunResult(
        workload="w",
        policy=policy,
        operations=ops,
        accesses=ops,
        elapsed_ns=elapsed_ns,
        app_ns=elapsed_ns,
        system_ns=0,
    )


def test_normalize_throughput():
    results = {
        "static": result("static", 1000, 1_000_000),
        "multiclock": result("multiclock", 1500, 1_000_000),
    }
    comparison = normalize_throughput(results)
    assert comparison.values["static"] == pytest.approx(1.0)
    assert comparison.values["multiclock"] == pytest.approx(1.5)
    assert comparison.best() == "multiclock"
    assert comparison.gain_over("multiclock", "static") == pytest.approx(0.5)


def test_normalize_exec_time_lower_is_better():
    results = {
        "static": result("static", 1, 2_000_000),
        "multiclock": result("multiclock", 1, 1_000_000),
    }
    comparison = normalize_exec_time(results)
    assert comparison.values["multiclock"] == pytest.approx(0.5)


def test_zero_baseline_rejected():
    results = {"static": result("static", 0, 0)}
    with pytest.raises(ValueError):
        normalize_throughput(results)


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "-" in lines[1]


def test_render_bars():
    text = render_bars({"a": 1.0, "b": 2.0}, width=10)
    assert "##########" in text
    assert "(no data)" == render_bars({})


def test_render_series():
    points = [WindowPoint(0, 1.0), WindowPoint(1, 2.0)]
    text = render_series(points)
    assert "0" in text and "1" in text
    assert render_series([]) == "(no data)"


def test_comparison_render_sorted():
    results = {
        "static": result("static", 1000, 1_000_000),
        "multiclock": result("multiclock", 1500, 1_000_000),
    }
    text = normalize_throughput(results).render()
    lines = text.splitlines()
    assert "multiclock" in lines[1]  # best first


def test_render_series_shows_gaps_for_no_data_windows():
    points = [
        WindowPoint(0, 4.0, samples=2),
        WindowPoint(1, float("nan"), samples=0),
        WindowPoint(2, 8.0, samples=1),
    ]
    text = render_series(points)
    lines = text.splitlines()
    assert "(no data)" in lines[1]
    assert "#" not in lines[1]
    # Peak scaling must ignore the NaN: window 2 gets the full bar.
    assert lines[2].count("#") > lines[0].count("#")
