"""Unit tests for CSV export."""

import csv

import pytest

from repro.analysis.compare import PolicyComparison
from repro.analysis.export import write_comparisons_csv, write_rows_csv, write_series_csv
from repro.sim.stats import WindowPoint


def comparison(workload="A"):
    return PolicyComparison(
        workload, "throughput", "static", {"static": 1.0, "multiclock": 1.5}
    )


def read(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_comparisons_csv_layout(tmp_path):
    path = write_comparisons_csv({"A": comparison("A"), "B": comparison("B")},
                                 tmp_path / "fig5.csv")
    rows = read(path)
    assert rows[0] == ["workload", "metric", "baseline", "multiclock", "static"]
    assert rows[1][0] == "A"
    assert float(rows[1][3]) == pytest.approx(1.5)
    assert len(rows) == 3


def test_comparisons_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_comparisons_csv({}, tmp_path / "x.csv")


def test_series_csv_pads_ragged_series(tmp_path):
    series = {
        "multiclock": [WindowPoint(0, 1.0), WindowPoint(1, 2.0)],
        "nimble": [WindowPoint(0, 3.0)],
    }
    path = write_series_csv(series, tmp_path / "fig8.csv")
    rows = read(path)
    assert rows[0] == ["window", "multiclock", "nimble"]
    assert rows[1] == ["0", "1.000000", "3.000000"]
    assert rows[2] == ["1", "2.000000", ""]


def test_rows_csv_roundtrip(tmp_path):
    path = write_rows_csv(["a", "b"], [[1, 2], [3, 4]], tmp_path / "t.csv")
    assert read(path) == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_rows_csv_width_mismatch_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_rows_csv(["a"], [[1, 2]], tmp_path / "t.csv")


def test_export_real_experiment_output(tmp_path):
    from repro.experiments.fig5_ycsb import run_fig5

    comparisons = run_fig5(
        n_records=300, ops_per_phase=300,
        policies=("static", "multiclock"), phases=("A",),
    )
    path = write_comparisons_csv(comparisons, tmp_path / "fig5.csv")
    rows = read(path)
    assert rows[1][0] == "A"


def test_series_csv_writes_empty_cells_for_no_data_windows(tmp_path):
    series = {
        "reaccess": [
            WindowPoint(0, 50.0, samples=3),
            WindowPoint(1, float("nan"), samples=0),
            WindowPoint(2, 25.0, samples=1),
        ],
    }
    path = write_series_csv(series, tmp_path / "fig9.csv")
    rows = read(path)
    assert rows[1] == ["0", "50.000000"]
    assert rows[2] == ["1", ""]  # a gap, not a fabricated zero
    assert rows[3] == ["2", "25.000000"]
