"""Unit tests for counters and windowed series."""

import pytest

from repro.sim.stats import StatsBook, WindowedSeries, WindowPoint
from repro.sim.vclock import NANOS_PER_SECOND


def test_counters_default_to_zero():
    book = StatsBook()
    assert book.get("never") == 0


def test_counter_increment():
    book = StatsBook()
    book.inc("x")
    book.inc("x", 4)
    assert book.get("x") == 5


def test_snapshot_is_a_copy():
    book = StatsBook()
    book.inc("x")
    snap = book.snapshot()
    book.inc("x")
    assert snap["x"] == 1
    assert book.get("x") == 2


def test_series_requires_positive_window():
    with pytest.raises(ValueError):
        WindowedSeries(0)


def test_series_buckets_by_window():
    series = WindowedSeries(window_seconds=1.0)
    series.record(0, 1.0)
    series.record(NANOS_PER_SECOND // 2, 1.0)
    series.record(NANOS_PER_SECOND, 5.0)
    totals = series.totals()
    assert [p.value for p in totals] == [2.0, 5.0]


def test_series_fills_empty_windows_with_zero():
    series = WindowedSeries(window_seconds=1.0)
    series.record(0, 1.0)
    series.record(3 * NANOS_PER_SECOND, 1.0)
    totals = series.totals()
    assert [p.value for p in totals] == [1.0, 0.0, 0.0, 1.0]
    assert [p.window_id for p in totals] == [0, 1, 2, 3]


def test_series_means():
    series = WindowedSeries(window_seconds=1.0)
    series.record(0, 2.0)
    series.record(1, 4.0)
    means = series.means()
    assert means[0].value == pytest.approx(3.0)


def test_empty_series():
    series = WindowedSeries(window_seconds=1.0)
    assert series.totals() == []
    assert series.means() == []
    assert len(series) == 0


def test_make_series_is_idempotent_for_matching_width():
    book = StatsBook()
    first = book.make_series("s", 1.0)
    second = book.make_series("s", 1.0)
    assert first is second


def test_make_series_rejects_width_mismatch():
    """Silently returning the old series would bucket the caller's
    events on a window width it never asked for."""
    book = StatsBook()
    book.make_series("s", 1.0)
    with pytest.raises(ValueError, match="window"):
        book.make_series("s", 2.0)
    # The original series survives untouched.
    assert book.make_series("s", 1.0).window_seconds == 1.0


def test_record_rejects_negative_time():
    """A negative time_ns floor-divides to a negative window id that the
    dense range(last + 1) silently drops from totals()/means()."""
    series = WindowedSeries(window_seconds=1.0)
    with pytest.raises(ValueError, match="negative"):
        series.record(-1, 1.0)
    series.record(0, 1.0)  # t=0 stays legal
    assert [p.value for p in series.totals()] == [1.0]


def test_record_into_missing_series_raises():
    book = StatsBook()
    with pytest.raises(KeyError):
        book.record("missing", 0)


def test_book_record_routes_to_series():
    book = StatsBook()
    book.make_series("s", 1.0)
    book.record("s", 0, 3.0)
    assert book.series["s"].totals()[0].value == 3.0


def test_interned_counter_shares_state_with_string_interface():
    book = StatsBook()
    handle = book.counter("x")
    handle.n += 3
    book.inc("x", 2)
    assert book.get("x") == 5
    assert book.counter("x") is handle
    assert book.snapshot() == {"x": 5}


def test_interned_counter_appears_in_snapshot_at_zero():
    """Interning alone registers the name, so both access drivers
    produce identical snapshot key sets even for untouched counters."""
    book = StatsBook()
    book.counter("never.bumped")
    assert book.snapshot() == {"never.bumped": 0}


def test_window_point_start_uses_width():
    assert WindowPoint(3, 1.0).start_seconds == 3.0  # default 1s windows
    assert WindowPoint(3, 1.0, width_seconds=20.0).start_seconds == 60.0


def test_series_points_carry_window_width():
    series = WindowedSeries(window_seconds=0.5)
    series.record(int(1.2 * NANOS_PER_SECOND), 1.0)
    points = series.totals()
    assert points[-1].window_id == 2
    assert points[-1].start_seconds == pytest.approx(1.0)


def test_means_mark_empty_windows_as_no_data():
    """A mean over nothing is undefined: empty windows must come back as
    NaN with samples=0, not as a fabricated 0.0 (the Fig. 9 bug where
    "no promoted pages this window" read as "0% re-accessed")."""
    import math

    series = WindowedSeries(window_seconds=1.0)
    series.record(0, 4.0)
    series.record(3 * NANOS_PER_SECOND, 8.0)
    means = series.means()
    assert [p.window_id for p in means] == [0, 1, 2, 3]
    assert means[0].value == pytest.approx(4.0)
    assert math.isnan(means[1].value) and math.isnan(means[2].value)
    assert means[3].value == pytest.approx(8.0)
    assert [p.samples for p in means] == [1, 0, 0, 1]
    assert means[1].is_empty and not means[0].is_empty


def test_totals_keep_zero_for_empty_windows_but_flag_them():
    series = WindowedSeries(window_seconds=1.0)
    series.record(0, 1.0)
    series.record(2 * NANOS_PER_SECOND, 1.0)
    totals = series.totals()
    assert [p.value for p in totals] == [1.0, 0.0, 1.0]
    assert [p.samples for p in totals] == [1, 0, 1]
    assert totals[1].is_empty


def test_hand_built_points_have_unknown_samples():
    point = WindowPoint(0, 1.0)
    assert point.samples is None
    assert not point.is_empty
