"""Tests for the scheduler's cached-deadline fast path.

``DaemonScheduler.next_deadline_ns`` lets the access hot path decide
with one integer compare whether ``run_due()`` could do anything.  The
cache must track the heap exactly: stale-early wastes time, stale-late
silently skips wakeups.
"""

from repro.sim.events import NEVER_NS, Daemon, DaemonScheduler
from repro.sim.vclock import NANOS_PER_SECOND, VirtualClock


def make_sched():
    clock = VirtualClock()
    return clock, DaemonScheduler(clock)


def test_empty_scheduler_advertises_never():
    __, sched = make_sched()
    assert sched.next_deadline_ns == NEVER_NS
    assert sched.run_due() == 0
    assert sched.next_deadline_ns == NEVER_NS


def test_register_caches_earliest_deadline():
    __, sched = make_sched()
    sched.register(Daemon("slow", 2.0, lambda now: 0))
    assert sched.next_deadline_ns == 2 * NANOS_PER_SECOND
    sched.register(Daemon("fast", 0.5, lambda now: 0))
    assert sched.next_deadline_ns == NANOS_PER_SECOND // 2
    sched.register(Daemon("slower", 5.0, lambda now: 0))
    assert sched.next_deadline_ns == NANOS_PER_SECOND // 2


def test_run_due_before_deadline_is_a_cheap_noop():
    clock, sched = make_sched()
    daemon = sched.register(Daemon("d", 1.0, lambda now: 0))
    clock.advance_app(NANOS_PER_SECOND - 1)
    assert sched.run_due() == 0
    assert daemon.wakeups == 0
    assert sched.next_deadline_ns == NANOS_PER_SECOND  # untouched


def test_cache_refreshed_after_firing():
    clock, sched = make_sched()
    daemon = sched.register(Daemon("d", 1.0, lambda now: 0))
    clock.advance_app(NANOS_PER_SECOND)
    sched.run_due()
    assert daemon.wakeups == 1
    # Rescheduled one interval past the (on-time) deadline.
    assert sched.next_deadline_ns == 2 * NANOS_PER_SECOND


def test_cache_tracks_heap_across_interleaved_daemons():
    clock, sched = make_sched()
    sched.register(Daemon("fast", 0.25, lambda now: 0))
    sched.register(Daemon("slow", 1.0, lambda now: 0))
    for __ in range(12):
        clock.advance_app(NANOS_PER_SECOND // 8)
        sched.run_due()
        assert sched.next_deadline_ns == sched._heap[0][0]
        assert sched.next_deadline_ns > clock.now_ns


def test_fast_path_never_skips_an_overdue_daemon():
    """Checking the cache then calling run_due fires exactly like always
    calling run_due — the pattern the batched access loop relies on."""

    def drive(use_cache: bool) -> list[int]:
        clock, sched = make_sched()
        fired: list[int] = []
        sched.register(Daemon("d", 0.3, lambda now: fired.append(now) or 0))
        for __ in range(50):
            clock.advance_app(NANOS_PER_SECOND // 10)
            if not use_cache or sched.next_deadline_ns <= clock.now_ns:
                sched.run_due()
        return fired

    assert drive(use_cache=True) == drive(use_cache=False)
