"""Unit tests for the virtual clock."""

import pytest

from repro.sim.vclock import NANOS_PER_SECOND, VirtualClock


def test_starts_at_zero_by_default():
    clock = VirtualClock()
    assert clock.now_ns == 0
    assert clock.app_ns == 0
    assert clock.system_ns == 0


def test_custom_start():
    clock = VirtualClock(start_ns=500)
    assert clock.now_ns == 500


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(start_ns=-1)


def test_advance_app_moves_now_and_app_bucket():
    clock = VirtualClock()
    clock.advance_app(100)
    assert clock.now_ns == 100
    assert clock.app_ns == 100
    assert clock.system_ns == 0


def test_advance_system_moves_now_and_system_bucket():
    clock = VirtualClock()
    clock.advance_system(75)
    assert clock.now_ns == 75
    assert clock.system_ns == 75
    assert clock.app_ns == 0


def test_buckets_sum_to_now():
    clock = VirtualClock()
    clock.advance_app(40)
    clock.advance_system(60)
    clock.advance_app(10)
    assert clock.app_ns + clock.system_ns == clock.now_ns == 110


def test_time_cannot_go_backwards():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance_app(-1)
    with pytest.raises(ValueError):
        clock.advance_system(-5)


def test_zero_advance_is_allowed():
    clock = VirtualClock()
    clock.advance_app(0)
    assert clock.now_ns == 0


def test_now_seconds_conversion():
    clock = VirtualClock()
    clock.advance_app(NANOS_PER_SECOND // 2)
    assert clock.now_seconds == pytest.approx(0.5)


def test_returns_new_time():
    clock = VirtualClock()
    assert clock.advance_app(5) == 5
    assert clock.advance_system(7) == 12
