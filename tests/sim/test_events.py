"""Unit tests for the daemon scheduler."""

import pytest

from repro.sim.events import Daemon, DaemonScheduler
from repro.sim.vclock import NANOS_PER_SECOND, VirtualClock


def make_sched():
    clock = VirtualClock()
    return clock, DaemonScheduler(clock)


def test_daemon_requires_positive_interval():
    with pytest.raises(ValueError):
        Daemon("bad", 0.0, lambda now: 0)


def test_daemon_does_not_fire_before_deadline():
    clock, sched = make_sched()
    fired = []
    sched.register(Daemon("d", 1.0, lambda now: fired.append(now) or 0))
    clock.advance_app(NANOS_PER_SECOND - 1)
    sched.run_due()
    assert fired == []


def test_daemon_fires_at_deadline():
    clock, sched = make_sched()
    fired = []
    sched.register(Daemon("d", 1.0, lambda now: fired.append(now) or 0))
    clock.advance_app(NANOS_PER_SECOND)
    sched.run_due()
    assert len(fired) == 1


def test_daemon_reschedules_after_firing():
    clock, sched = make_sched()
    daemon = sched.register(Daemon("d", 1.0, lambda now: 0))
    for __ in range(3):
        clock.advance_app(NANOS_PER_SECOND)
        sched.run_due()
    assert daemon.wakeups == 3


def test_overdue_daemon_fires_once_not_replayed():
    """A daemon that oversleeps does not replay missed wakeups."""
    clock, sched = make_sched()
    daemon = sched.register(Daemon("d", 1.0, lambda now: 0))
    clock.advance_app(10 * NANOS_PER_SECOND)
    sched.run_due()
    assert daemon.wakeups == 1


def test_work_is_charged_as_system_time():
    clock, sched = make_sched()
    sched.register(Daemon("d", 1.0, lambda now: 1234))
    clock.advance_app(NANOS_PER_SECOND)
    charged = sched.run_due()
    assert charged == 1234
    assert clock.system_ns == 1234


def test_zero_work_charges_nothing():
    clock, sched = make_sched()
    sched.register(Daemon("d", 1.0, lambda now: 0))
    clock.advance_app(NANOS_PER_SECOND)
    assert sched.run_due() == 0
    assert clock.system_ns == 0


def test_disabled_daemon_does_not_run():
    clock, sched = make_sched()
    fired = []
    daemon = Daemon("d", 1.0, lambda now: fired.append(now) or 0, enabled=False)
    sched.register(daemon)
    clock.advance_app(2 * NANOS_PER_SECOND)
    sched.run_due()
    assert fired == []


def test_duplicate_name_rejected():
    __, sched = make_sched()
    sched.register(Daemon("d", 1.0, lambda now: 0))
    with pytest.raises(ValueError):
        sched.register(Daemon("d", 2.0, lambda now: 0))


def test_same_deadline_fires_in_registration_order():
    clock, sched = make_sched()
    order = []
    sched.register(Daemon("first", 1.0, lambda now: order.append("first") or 0))
    sched.register(Daemon("second", 1.0, lambda now: order.append("second") or 0))
    clock.advance_app(NANOS_PER_SECOND)
    sched.run_due()
    assert order == ["first", "second"]


def test_get_and_daemons_accessors():
    __, sched = make_sched()
    daemon = sched.register(Daemon("d", 1.0, lambda now: 0))
    assert sched.get("d") is daemon
    assert sched.daemons == [daemon]
