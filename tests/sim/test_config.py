"""Unit tests for SimulationConfig validation."""

import pytest

from repro.sim.config import DaemonConfig, LatencyConfig, SimulationConfig


def test_default_config_validates():
    assert SimulationConfig().validated() is not None


def test_total_page_properties():
    config = SimulationConfig(dram_pages=(100, 200), pm_pages=(1000,))
    assert config.total_dram_pages == 300
    assert config.total_pm_pages == 1000
    assert config.total_pages == 1300


def test_empty_tier_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(dram_pages=(), pm_pages=(100,)).validated()
    with pytest.raises(ValueError):
        SimulationConfig(dram_pages=(100,), pm_pages=()).validated()


def test_nonpositive_capacity_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(dram_pages=(0,), pm_pages=(100,)).validated()


def test_latency_must_be_positive():
    with pytest.raises(ValueError):
        LatencyConfig(dram_read_ns=0).validated()
    with pytest.raises(ValueError):
        LatencyConfig(pm_write_ns=-5).validated()


def test_daemon_intervals_must_be_positive():
    with pytest.raises(ValueError):
        DaemonConfig(kpromoted_interval_s=0).validated()
    with pytest.raises(ValueError):
        DaemonConfig(scan_budget_pages=0).validated()


def test_with_overrides_replaces_and_revalidates():
    config = SimulationConfig().with_overrides(dram_pages=(123,))
    assert config.dram_pages == (123,)
    with pytest.raises(ValueError):
        SimulationConfig().with_overrides(dram_pages=())


def test_defaults_reflect_paper_settings():
    """Section V: one-second scan interval, 1024-page scan budget."""
    daemons = DaemonConfig()
    assert daemons.kpromoted_interval_s == 1.0
    assert daemons.scan_budget_pages == 1024


def test_pm_latency_asymmetry_preserved():
    """PM reads and writes cost differently (Section VII), and both cost
    more than DRAM (the premise of tiering)."""
    latency = LatencyConfig()
    assert latency.pm_read_ns != latency.pm_write_ns
    assert latency.pm_read_ns > latency.dram_read_ns
    assert latency.pm_write_ns > latency.dram_write_ns
