"""Unit tests for deterministic RNG derivation."""

from repro.sim.rng import derive_seed, make_rng


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "a") == derive_seed(42, "a")


def test_derive_seed_differs_by_name():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_differs_by_base():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_make_rng_streams_are_reproducible():
    first = make_rng(7, "workload").integers(0, 1 << 30, size=8)
    second = make_rng(7, "workload").integers(0, 1 << 30, size=8)
    assert (first == second).all()


def test_make_rng_streams_are_independent():
    a = make_rng(7, "a").integers(0, 1 << 30, size=8)
    b = make_rng(7, "b").integers(0, 1 << 30, size=8)
    assert (a != b).any()


def test_unnamed_rng_uses_base_seed():
    a = make_rng(7).integers(0, 1 << 30, size=4)
    b = make_rng(7).integers(0, 1 << 30, size=4)
    assert (a == b).all()
