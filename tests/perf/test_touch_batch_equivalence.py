"""The batched and per-access drivers must be bit-identical.

``Machine.touch_batch`` inlines the hot path and accumulates virtual
time and counters in locals; these tests pin down that none of that
changes observable behaviour: for a fixed-seed workload, both drivers
end with the same counter snapshot, the same virtual clock (all three
buckets), and daemons fired at the same virtual times.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.sim.events import Daemon
from repro.workloads.synthetic import ShiftingHotSetWorkload, ZipfWorkload

POLICIES = ["multiclock", "static", "nimble", "memory-mode", "autonuma"]
WORKLOADS = {
    "zipf": lambda: ZipfWorkload(600, 6000, seed=11, write_ratio=0.3),
    "shifting": lambda: ShiftingHotSetWorkload(
        600, 6000, seed=11, write_ratio=0.3, phase_ops=1500
    ),
}


def _config() -> SimulationConfig:
    return SimulationConfig(
        dram_pages=(128,),
        pm_pages=(1024,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.001,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.001,
        ),
        seed=7,
    )


def _drive(policy: str, workload_key: str, *, batched: bool):
    machine = Machine(_config(), policy)
    workload = WORKLOADS[workload_key]()
    workload.setup(machine)
    if batched:
        machine.touch_batch(workload.accesses())
    else:
        for access in workload.accesses():
            machine.touch(
                access.process, access.vpage, is_write=access.is_write, lines=access.lines
            )
    clock = machine.clock
    return machine, (
        machine.stats.snapshot(),
        clock.now_ns,
        clock.app_ns,
        clock.system_ns,
    )


@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
@pytest.mark.parametrize("policy", POLICIES)
def test_batched_driver_is_bit_identical(policy: str, workload_key: str):
    __, per_access = _drive(policy, workload_key, batched=False)
    __, batched = _drive(policy, workload_key, batched=True)
    assert batched[0] == per_access[0], "counter snapshots diverged"
    assert batched[1:] == per_access[1:], "virtual clocks diverged"


@pytest.mark.parametrize("policy", ["multiclock", "static"])
def test_daemons_fire_at_same_virtual_times(policy: str):
    """The scheduler fast-path must not shift or drop any wakeup."""

    def run(batched: bool) -> list[int]:
        machine = Machine(_config(), policy)
        fire_times: list[int] = []
        machine.scheduler.register(
            Daemon("probe", 0.0005, lambda now: fire_times.append(now) or 0)
        )
        workload = WORKLOADS["zipf"]()
        workload.setup(machine)
        if batched:
            machine.touch_batch(workload.accesses())
        else:
            for access in workload.accesses():
                machine.touch(
                    access.process,
                    access.vpage,
                    is_write=access.is_write,
                    lines=access.lines,
                )
        return fire_times

    per_access = run(batched=False)
    batched = run(batched=True)
    assert per_access, "probe daemon never fired — workload too small"
    assert batched == per_access


def test_touch_batch_returns_access_and_operation_counts():
    machine = Machine(_config(), "static")
    workload = WORKLOADS["zipf"]()
    workload.setup(machine)
    accesses, operations = machine.touch_batch(workload.accesses())
    assert accesses == 6000
    assert operations == 6000  # synthetic streams mark every access
