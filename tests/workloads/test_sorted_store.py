"""Unit tests for the scan-capable clustered store."""

import pytest

from repro.workloads.sorted_store import SortedKVStore


@pytest.fixture
def store():
    s = SortedKVStore(value_size=1024)
    for key in range(100):
        s.insert(key)
    return s


def test_validation():
    with pytest.raises(ValueError):
        SortedKVStore(value_size=0)
    with pytest.raises(ValueError):
        SortedKVStore(value_size=5000)


def test_clustered_location(store):
    assert store.location(5) == 5
    assert store.location(999) is None


def test_read_probes_index_then_data(store):
    touches = store.read(10)
    assert len(touches) == 3  # root, leaf, data
    assert touches[0].vpage == store.index_base
    assert touches[-1].vpage >= store.data_base


def test_scan_touches_consecutive_pages(store):
    touches = store.scan(0, 50)
    data_pages = [t.vpage for t in touches if t.vpage >= store.data_base]
    assert data_pages == sorted(data_pages)
    assert data_pages == list(range(data_pages[0], data_pages[-1] + 1))
    expected_pages = (50 - 1) // store.items_per_page + 1
    assert len(data_pages) in (expected_pages, expected_pages + 1)


def test_scan_clamps_at_max_key(store):
    touches = store.scan(95, 100)
    data_pages = [t.vpage for t in touches if t.vpage >= store.data_base]
    assert data_pages[-1] == store._data_vpage(99)


def test_scan_validation(store):
    with pytest.raises(ValueError):
        store.scan(0, 0)
    with pytest.raises(KeyError):
        store.scan(5000, 10)


def test_missing_key_raises(store):
    with pytest.raises(KeyError):
        store.read(5000)


def test_update_writes(store):
    assert store.update(3)[-1].is_write
    assert not store.read(3)[-1].is_write


def test_rmw_combines(store):
    assert len(store.read_modify_write(3)) == 6


def test_footprint_counts_index_and_data(store):
    footprint = store.footprint_pages(100)
    data_pages = (100 - 1) // store.items_per_page + 1
    assert footprint == data_pages + store.hash_pages(100)
    assert store.hash_pages(100) >= 2  # root plus at least one leaf


def test_reinsert_is_update(store):
    touches = store.insert(5)
    assert store.n_records == 100
    assert touches[-1].is_write
