"""Betweenness-centrality oracle test: our Brandes pass vs networkx.

The BC workload's page touches are driven by the forward BFS (depth and
sigma arrays) and the reverse dependency pass; if either is wrong the
emitted access pattern is wrong too.  This test re-executes the kernel's
exact forward logic and checks sigma (shortest-path counts) and depth
against networkx for every reachable vertex.
"""

from collections import deque

import networkx as nx
import pytest

from repro.workloads.gapbs.graph import Graph


@pytest.fixture(scope="module")
def graph():
    return Graph.uniform(120, 360, seed=13)


def brandes_forward(graph: Graph, source: int):
    """The exact forward pass of BetweennessCentralityWorkload._brandes."""
    depth = {source: 0}
    sigma = {source: 1.0}
    order = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neigh(u).tolist():
            if v not in depth:
                depth[v] = depth[u] + 1
                sigma[v] = 0.0
                queue.append(v)
            if depth[v] == depth[u] + 1:
                sigma[v] += sigma[u]
    return depth, sigma, order


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for v in graph.neigh(u).tolist():
            g.add_edge(u, v)
    return g


def test_depths_match_networkx(graph):
    g = to_networkx(graph)
    for source in (0, 17, 63):
        depth, __, __o = brandes_forward(graph, source)
        expected = nx.single_source_shortest_path_length(g, source)
        assert depth == dict(expected)


def test_sigma_counts_shortest_paths(graph):
    g = to_networkx(graph)
    for source in (0, 17):
        __, sigma, __o = brandes_forward(graph, source)
        for target in list(sigma)[:40]:
            expected = len(list(nx.all_shortest_paths(g, source, target)))
            assert sigma[target] == pytest.approx(expected), (source, target)


def test_order_is_non_decreasing_in_depth(graph):
    depth, __, order = brandes_forward(graph, 5)
    depths = [depth[u] for u in order]
    assert depths == sorted(depths)


def test_dependency_pass_conserves_mass(graph):
    """Brandes' accumulation: sum over v of delta(v) equals the number of
    (source, target) dependency contributions, i.e. sum over reachable
    t != s of 1 weighted along shortest-path DAG edges."""
    source = 3
    depth, sigma, order = brandes_forward(graph, source)
    delta = {u: 0.0 for u in order}
    for u in reversed(order):
        for v in graph.neigh(u).tolist():
            if v in depth and depth[v] == depth[u] + 1 and sigma[v] > 0:
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
    # Each reachable non-source vertex contributes exactly 1 unit of
    # dependency mass, distributed over its predecessors.
    reachable = len(order) - 1
    assert sum(delta.values()) == pytest.approx(
        sum(1.0 + delta[v] for v in order if v != source)
    )
    assert sum(1.0 for v in order if v != source) == reachable
