"""Unit tests for the multi-tenant workload combinator."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.multitenant import MultiTenantWorkload
from repro.workloads.synthetic import UniformWorkload, ZipfWorkload

CONFIG = SimulationConfig(dram_pages=(256,), pm_pages=(2048,))
DUAL = SimulationConfig(dram_pages=(128, 128), pm_pages=(1024, 1024), sockets=2)


def test_validation():
    with pytest.raises(ValueError):
        MultiTenantWorkload([])
    with pytest.raises(ValueError):
        MultiTenantWorkload([ZipfWorkload(10, 10)], home_sockets=[0, 1])
    with pytest.raises(ValueError):
        MultiTenantWorkload([ZipfWorkload(10, 10)], batch=0)


def test_all_tenant_ops_delivered():
    tenants = [ZipfWorkload(100, 400, seed=1), UniformWorkload(100, 700, seed=2)]
    workload = MultiTenantWorkload(tenants)
    result = run_workload(workload, CONFIG, policy="static")
    assert result.operations == 1100


def test_tenants_get_separate_processes():
    tenants = [ZipfWorkload(100, 50, seed=1), ZipfWorkload(100, 50, seed=2)]
    workload = MultiTenantWorkload(tenants)
    machine = Machine(CONFIG, "static")
    run_workload(workload, CONFIG, machine=machine)
    pids = {tenant.process.pid for tenant in tenants}
    assert len(pids) == 2


def test_streams_interleave_in_batches():
    tenants = [ZipfWorkload(50, 64, seed=1), ZipfWorkload(50, 64, seed=2)]
    workload = MultiTenantWorkload(tenants, batch=8)
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    owners = [access.process.pid for access in workload.accesses()]
    # The first 8 belong to tenant 1, the next 8 to tenant 2, and so on.
    assert len(set(owners[:8])) == 1
    assert len(set(owners[8:16])) == 1
    assert owners[0] != owners[8]


def test_uneven_streams_drain_completely():
    tenants = [ZipfWorkload(50, 10, seed=1), ZipfWorkload(50, 200, seed=2)]
    workload = MultiTenantWorkload(tenants, batch=16)
    result = run_workload(workload, CONFIG, policy="static")
    assert result.operations == 210


def test_home_socket_pinning():
    tenants = [ZipfWorkload(100, 20, seed=1), ZipfWorkload(100, 20, seed=2)]
    workload = MultiTenantWorkload(tenants, home_sockets=[0, 1])
    machine = Machine(DUAL, "static")
    run_workload(workload, DUAL, machine=machine)
    assert tenants[0].process.home_socket == 0
    assert tenants[1].process.home_socket == 1


def test_footprint_sums_tenants():
    tenants = [ZipfWorkload(100, 10), ZipfWorkload(250, 10)]
    assert MultiTenantWorkload(tenants).footprint_pages() == 350


def test_name_mentions_tenants():
    workload = MultiTenantWorkload([ZipfWorkload(10, 10), UniformWorkload(10, 10)])
    assert "zipf" in workload.name and "uniform" in workload.name


# -- op-boundary derivation (regression) -------------------------------------


def test_marks_op_boundaries_derived_from_children():
    """Regression: the combinator used to inherit the class default
    (False) even when every child marked boundaries, so a phase that
    completed zero operations reported accesses/s as its throughput."""
    from repro.workloads.base import Workload

    class Unmarked(Workload):
        name = "unmarked"

        def setup(self, machine):
            pass

        def footprint_pages(self):
            return 0

        def accesses(self):
            return iter(())

    marking = MultiTenantWorkload([ZipfWorkload(10, 10), UniformWorkload(10, 10)])
    assert marking.marks_op_boundaries is True

    plain = MultiTenantWorkload([Unmarked(), Unmarked()])
    assert plain.marks_op_boundaries is False

    mixed = MultiTenantWorkload([Unmarked(), ZipfWorkload(10, 10)])
    assert mixed.marks_op_boundaries is True


def test_marking_combination_reports_ops_not_accesses():
    from repro.workloads.kvstore import SlabKVStore  # noqa: F401 (import check)
    from repro.workloads.multitenant import KVTenantWorkload

    tenants = [
        KVTenantWorkload("a", 60, 200, seed=1),
        KVTenantWorkload("b", 60, 200, seed=2),
    ]
    workload = MultiTenantWorkload(tenants)
    result = run_workload(workload, CONFIG, policy="static")
    # load (60 inserts) + 200 traffic ops per tenant; each op is several
    # accesses, so ops == the marked boundaries, not the access count.
    assert result.operations == 2 * 260
    assert result.accesses > result.operations


# -- the KV tenant workload --------------------------------------------------


def make_kv(**kwargs):
    from repro.workloads.multitenant import KVTenantWorkload

    defaults = dict(alpha=1.1, read_ratio=0.9, phases=(1.0,), seed=3)
    defaults.update(kwargs)
    return KVTenantWorkload("t", 80, 300, **defaults)


def test_kv_tenant_validation():
    from repro.workloads.multitenant import KVTenantWorkload

    with pytest.raises(ValueError):
        KVTenantWorkload("t", 0, 10)
    with pytest.raises(ValueError):
        KVTenantWorkload("t", 10, 10, alpha=0.0)
    with pytest.raises(ValueError):
        KVTenantWorkload("t", 10, 10, read_ratio=1.5)
    with pytest.raises(ValueError):
        KVTenantWorkload("t", 10, 10, phases=())
    with pytest.raises(ValueError):
        KVTenantWorkload("t", 10, 10, phases=(0.0, 0.0))


def test_kv_tenant_phase_budget_sums_exactly():
    workload = make_kv(phases=(1.0, 0.35, 1.0))
    assert sum(workload.phase_ops()) == workload.ops
    workload = make_kv(phases=(0.3, 0.3, 0.3, 0.1))
    assert sum(workload.phase_ops()) == workload.ops


def test_kv_tenant_stream_shape():
    workload = make_kv()
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    ops = list(workload.operations())
    # load phase inserts every record, then the traffic ops.
    assert len(ops) == workload.n_records + workload.ops
    boundaries = 0
    fresh = make_kv()
    fresh.setup(Machine(CONFIG, "static"))
    for access in fresh.accesses():
        boundaries += access.op_boundary
    assert boundaries == fresh.n_records + fresh.ops


def test_kv_tenant_runs_end_to_end():
    workload = make_kv(phases=(1.0, 0.2, 1.0))
    result = run_workload(workload, CONFIG, policy="multiclock")
    assert result.operations == workload.n_records + workload.ops
