"""Unit tests for the multi-tenant workload combinator."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.multitenant import MultiTenantWorkload
from repro.workloads.synthetic import UniformWorkload, ZipfWorkload

CONFIG = SimulationConfig(dram_pages=(256,), pm_pages=(2048,))
DUAL = SimulationConfig(dram_pages=(128, 128), pm_pages=(1024, 1024), sockets=2)


def test_validation():
    with pytest.raises(ValueError):
        MultiTenantWorkload([])
    with pytest.raises(ValueError):
        MultiTenantWorkload([ZipfWorkload(10, 10)], home_sockets=[0, 1])
    with pytest.raises(ValueError):
        MultiTenantWorkload([ZipfWorkload(10, 10)], batch=0)


def test_all_tenant_ops_delivered():
    tenants = [ZipfWorkload(100, 400, seed=1), UniformWorkload(100, 700, seed=2)]
    workload = MultiTenantWorkload(tenants)
    result = run_workload(workload, CONFIG, policy="static")
    assert result.operations == 1100


def test_tenants_get_separate_processes():
    tenants = [ZipfWorkload(100, 50, seed=1), ZipfWorkload(100, 50, seed=2)]
    workload = MultiTenantWorkload(tenants)
    machine = Machine(CONFIG, "static")
    run_workload(workload, CONFIG, machine=machine)
    pids = {tenant.process.pid for tenant in tenants}
    assert len(pids) == 2


def test_streams_interleave_in_batches():
    tenants = [ZipfWorkload(50, 64, seed=1), ZipfWorkload(50, 64, seed=2)]
    workload = MultiTenantWorkload(tenants, batch=8)
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    owners = [access.process.pid for access in workload.accesses()]
    # The first 8 belong to tenant 1, the next 8 to tenant 2, and so on.
    assert len(set(owners[:8])) == 1
    assert len(set(owners[8:16])) == 1
    assert owners[0] != owners[8]


def test_uneven_streams_drain_completely():
    tenants = [ZipfWorkload(50, 10, seed=1), ZipfWorkload(50, 200, seed=2)]
    workload = MultiTenantWorkload(tenants, batch=16)
    result = run_workload(workload, CONFIG, policy="static")
    assert result.operations == 210


def test_home_socket_pinning():
    tenants = [ZipfWorkload(100, 20, seed=1), ZipfWorkload(100, 20, seed=2)]
    workload = MultiTenantWorkload(tenants, home_sockets=[0, 1])
    machine = Machine(DUAL, "static")
    run_workload(workload, DUAL, machine=machine)
    assert tenants[0].process.home_socket == 0
    assert tenants[1].process.home_socket == 1


def test_footprint_sums_tenants():
    tenants = [ZipfWorkload(100, 10), ZipfWorkload(250, 10)]
    assert MultiTenantWorkload(tenants).footprint_pages() == 350


def test_name_mentions_tenants():
    workload = MultiTenantWorkload([ZipfWorkload(10, 10), UniformWorkload(10, 10)])
    assert "zipf" in workload.name and "uniform" in workload.name
