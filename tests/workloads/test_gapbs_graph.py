"""Unit tests for the CSR graph and generators."""

import numpy as np
import pytest

from repro.workloads.gapbs.graph import Graph


def test_csr_construction():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    assert graph.n == 4
    assert graph.m_directed == 6  # undirected: each edge stored twice
    assert set(graph.neigh(1).tolist()) == {0, 2}
    assert graph.degree(1) == 2


def test_self_loops_dropped():
    graph = Graph(3, [(0, 0), (0, 1)])
    assert graph.m_directed == 2
    assert graph.degree(0) == 1


def test_parallel_edges_deduplicated():
    graph = Graph(3, [(0, 1), (0, 1), (1, 0)])
    assert graph.m_directed == 2


def test_neighbors_sorted():
    graph = Graph(5, [(0, 3), (0, 1), (0, 4)])
    assert graph.neigh(0).tolist() == [1, 3, 4]


def test_out_of_range_endpoint_rejected():
    with pytest.raises(ValueError):
        Graph(3, [(0, 5)])


def test_empty_graph():
    graph = Graph(3, np.empty((0, 2)))
    assert graph.m_directed == 0
    assert graph.degree(0) == 0


def test_uniform_generator_size_and_determinism():
    a = Graph.uniform(100, 300, seed=5)
    b = Graph.uniform(100, 300, seed=5)
    assert a.m_directed == b.m_directed
    assert np.array_equal(a.neighbors, b.neighbors)
    assert 0 < a.m_directed <= 600


def test_rmat_generator_properties():
    graph = Graph.rmat(scale=8, edge_factor=8, seed=2)
    assert graph.n == 256
    assert graph.m_directed > 0
    degrees = np.diff(graph.offsets)
    # R-MAT produces a skewed degree distribution: the max degree should
    # dwarf the median.
    assert degrees.max() >= 4 * max(1, int(np.median(degrees)))


def test_rmat_scale_validation():
    with pytest.raises(ValueError):
        Graph.rmat(scale=0)


def test_offsets_are_consistent():
    graph = Graph.uniform(50, 200, seed=1)
    assert graph.offsets[0] == 0
    assert graph.offsets[-1] == graph.m_directed
    assert (np.diff(graph.offsets) >= 0).all()
