"""Unit tests for the motivation (Fig 1/2) workloads."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.motivation import PROFILES, MotivationProfile, MotivationWorkload

CONFIG = SimulationConfig(dram_pages=(512,), pm_pages=(4096,))


def test_four_paper_profiles_exist():
    assert set(PROFILES) == {"rubis", "specpower", "xalan", "lusearch"}


def test_profile_fraction_validation():
    with pytest.raises(ValueError):
        MotivationProfile("bad", 0.6, 0.5, 1, 1, 0.5)


def test_class_partition_covers_all_pages():
    workload = MotivationWorkload("rubis", pages=500, segments=4, ops_per_segment=100)
    total = (
        len(workload.dram_friendly) + len(workload.tier_friendly) + len(workload.rare)
    )
    assert total == 500


def test_trace_is_deterministic():
    def collect():
        workload = MotivationWorkload("xalan", pages=300, segments=4, ops_per_segment=200)
        return list(workload.trace())

    assert collect() == collect()


def test_trace_covers_all_segments():
    workload = MotivationWorkload("rubis", pages=300, segments=6, ops_per_segment=100)
    segments = {segment for segment, __ in workload.trace()}
    assert segments == set(range(6))


def test_dram_friendly_pages_hotter_than_rare():
    workload = MotivationWorkload("specpower", pages=400, segments=8, ops_per_segment=2000)
    from collections import Counter

    counts = Counter(vpage for __, vpage in workload.trace())
    hot = [counts.get(int(p), 0) for p in workload.dram_friendly]
    rare = [counts.get(int(p), 0) for p in workload.rare]
    assert sum(hot) / len(hot) > 10 * (sum(rare) / len(rare) + 1e-9)


def test_tier_friendly_pages_are_bimodal():
    """A tier-friendly page should have both active and idle segments."""
    workload = MotivationWorkload("xalan", pages=300, segments=12, ops_per_segment=3000)
    from collections import defaultdict

    per_segment = defaultdict(lambda: [0] * workload.segments)
    for segment, vpage in workload.trace():
        per_segment[vpage][segment] += 1
    bimodal = 0
    for vpage in workload.tier_friendly.tolist():
        counts = per_segment[vpage]
        if max(counts) >= 5 and min(counts) <= 1:
            bimodal += 1
    assert bimodal >= len(workload.tier_friendly) // 3


def test_runs_on_a_machine():
    workload = MotivationWorkload("rubis", pages=300, segments=2, ops_per_segment=500)
    result = run_workload(workload, CONFIG, policy="static")
    assert result.operations == 1000
