"""Unit tests for the synthetic workloads."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.synthetic import (
    SequentialScanWorkload,
    ShiftingHotSetWorkload,
    UniformWorkload,
    ZipfWorkload,
)

CONFIG = SimulationConfig(dram_pages=(256,), pm_pages=(1024,))


def collect(workload):
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    return list(workload.accesses())


def test_parameter_validation():
    with pytest.raises(ValueError):
        ZipfWorkload(pages=0, ops=10)
    with pytest.raises(ValueError):
        ZipfWorkload(pages=10, ops=10, alpha=0)
    with pytest.raises(ValueError):
        UniformWorkload(pages=10, ops=10, write_ratio=1.5)
    with pytest.raises(ValueError):
        ShiftingHotSetWorkload(pages=10, ops=10, hot_fraction=0.0)
    with pytest.raises(ValueError):
        ZipfWorkload(pages=10, ops=10, lines=0)


def test_op_counts_exact():
    for workload in (
        ZipfWorkload(pages=100, ops=777),
        UniformWorkload(pages=100, ops=777),
        SequentialScanWorkload(pages=100, ops=777),
        ShiftingHotSetWorkload(pages=100, ops=777, phase_ops=100),
    ):
        assert len(collect(workload)) == 777


def test_accesses_stay_in_range():
    accesses = collect(UniformWorkload(pages=50, ops=500))
    assert all(0 <= access.vpage < 50 for access in accesses)


def test_zipf_skew():
    from collections import Counter

    accesses = collect(ZipfWorkload(pages=500, ops=5000, alpha=1.2))
    counts = Counter(a.vpage for a in accesses)
    ranked = sorted(counts.values(), reverse=True)
    assert sum(ranked[:50]) > 0.5 * 5000


def test_sequential_scan_order():
    accesses = collect(SequentialScanWorkload(pages=10, ops=25))
    assert [a.vpage for a in accesses][:12] == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]


def test_write_ratio_honored():
    accesses = collect(UniformWorkload(pages=100, ops=4000, write_ratio=0.5))
    writes = sum(1 for a in accesses if a.is_write)
    assert 0.4 < writes / 4000 < 0.6


def test_lines_propagate():
    accesses = collect(ZipfWorkload(pages=10, ops=5, lines=13))
    assert all(a.lines == 13 for a in accesses)


def test_hot_set_shifts_between_phases():
    from collections import Counter

    workload = ShiftingHotSetWorkload(
        pages=1000, ops=20_000, phase_ops=10_000, hot_fraction=0.05, seed=2
    )
    accesses = collect(workload)
    first = Counter(a.vpage for a in accesses[:10_000])
    second = Counter(a.vpage for a in accesses[10_000:])
    top_first = {p for p, __ in first.most_common(50)}
    top_second = {p for p, __ in second.most_common(50)}
    assert len(top_first & top_second) < 25


def test_determinism():
    a = [(x.vpage, x.is_write) for x in collect(ZipfWorkload(pages=100, ops=200, seed=4))]
    b = [(x.vpage, x.is_write) for x in collect(ZipfWorkload(pages=100, ops=200, seed=4))]
    assert a == b


def test_run_workload_end_to_end():
    result = run_workload(ZipfWorkload(pages=300, ops=1000), CONFIG, policy="static")
    assert result.operations == 1000
    assert result.accesses == 1000
    assert result.elapsed_ns > 0
    assert "ops" in result.summary()
