"""Unit tests for the slab KV store model."""

import pytest

from repro.sim.config import PAGE_SIZE
from repro.workloads.kvstore import CACHE_LINE, SlabKVStore


def test_value_size_validation():
    with pytest.raises(ValueError):
        SlabKVStore(value_size=0)
    with pytest.raises(ValueError):
        SlabKVStore(value_size=PAGE_SIZE)  # chunk exceeds a page


def test_items_packed_per_page():
    store = SlabKVStore(value_size=1024)
    assert store.items_per_page == PAGE_SIZE // (1024 + 56)


def test_insert_assigns_sequential_slots():
    store = SlabKVStore(value_size=1024)
    for key in range(10):
        store.insert(key)
    assert store.n_records == 10
    assert store.location(0) == 0
    assert store.location(9) == 9


def test_records_share_pages_in_insertion_order():
    store = SlabKVStore(value_size=1024)
    per_page = store.items_per_page
    touches = [store.insert(key)[-1] for key in range(per_page + 1)]
    first_page = touches[0].vpage
    assert all(t.vpage == first_page for t in touches[:per_page])
    assert touches[per_page].vpage == first_page + 1


def test_read_touches_hash_then_data():
    store = SlabKVStore(value_size=1024)
    store.insert(7)
    touches = store.read(7)
    assert len(touches) == 2
    hash_touch, data_touch = touches
    assert hash_touch.vpage < store.data_base
    assert data_touch.vpage >= store.data_base
    assert not any(t.is_write for t in touches)


def test_value_lines_scale_with_value_size():
    small = SlabKVStore(value_size=128)
    large = SlabKVStore(value_size=2048)
    small.insert(0)
    large.insert(0)
    assert large.read(0)[-1].lines > small.read(0)[-1].lines
    assert large.read(0)[-1].lines == (2048 + 56) // CACHE_LINE


def test_update_writes_data_page():
    store = SlabKVStore(value_size=1024)
    store.insert(3)
    touches = store.update(3)
    assert touches[-1].is_write
    assert not touches[0].is_write  # hash probe is a read


def test_read_modify_write_combines():
    store = SlabKVStore(value_size=1024)
    store.insert(3)
    touches = store.read_modify_write(3)
    assert len(touches) == 4
    assert touches[1].is_write is False
    assert touches[3].is_write is True


def test_missing_key_raises():
    store = SlabKVStore(value_size=1024)
    with pytest.raises(KeyError):
        store.read(42)


def test_reinsert_is_update():
    store = SlabKVStore(value_size=1024)
    store.insert(1)
    slot = store.location(1)
    store.insert(1)
    assert store.location(1) == slot
    assert store.n_records == 1


def test_footprint_accounts_hash_and_data():
    store = SlabKVStore(value_size=1024)
    n = 1000
    footprint = store.footprint_pages(n)
    data_pages = (n - 1) // store.items_per_page + 1
    assert footprint == data_pages + store.hash_pages(n)
    assert store.footprint_pages(0) >= 1
