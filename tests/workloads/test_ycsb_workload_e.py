"""Unit tests for YCSB workload E on the scan-capable backend."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.ycsb import MAX_SCAN_LENGTH, WORKLOAD_MIXES, YCSBSession

CONFIG = SimulationConfig(dram_pages=(512,), pm_pages=(4096,))


def loaded_session(n_records=600):
    session = YCSBSession(n_records, value_size=512, seed=9, backend="sorted")
    machine = Machine(CONFIG, "static")
    run_workload(session.load_phase(), CONFIG, machine=machine)
    return session, machine


def test_e_mix_matches_ycsb_spec():
    mix = WORKLOAD_MIXES["E"]
    assert mix.scan == 0.95
    assert mix.insert == 0.05


def test_memcached_backend_still_refuses_e():
    with pytest.raises(ValueError, match="non-operational"):
        YCSBSession(100, backend="memcached").phase("E", ops=1)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        YCSBSession(100, backend="rocksdb")


def test_e_runs_on_sorted_backend():
    session, machine = loaded_session()
    result = run_workload(session.phase("E", ops=400), CONFIG, machine=machine)
    assert result.operations == 400
    assert result.accesses > 400  # scans touch many pages per op


def test_scans_touch_contiguous_data_pages():
    session, machine = loaded_session()
    phase = session.phase("E", ops=100)
    phase.setup(machine)
    store = session.store
    runs = []
    current = []
    for access in phase.accesses():
        machine.touch(access.process, access.vpage, is_write=access.is_write,
                      lines=access.lines)
        if access.vpage >= store.data_base:
            current.append(access.vpage)
        if access.op_boundary:
            if len(current) > 1:
                runs.append(current)
            current = []
    assert runs, "expected multi-page scans"
    for run in runs:
        assert run == list(range(run[0], run[0] + len(run)))
        assert len(run) <= MAX_SCAN_LENGTH // store.items_per_page + 2


def test_e_inserts_grow_the_store():
    session, machine = loaded_session()
    before = session.next_key
    result = run_workload(session.phase("E", ops=2000), CONFIG, machine=machine)
    assert session.next_key > before
    assert result.operations == 2000


def test_other_phases_work_on_sorted_backend():
    session, machine = loaded_session()
    for name in ("A", "C", "F"):
        result = run_workload(session.phase(name, ops=200), CONFIG, machine=machine)
        assert result.operations == 200, name
