"""Unit tests for trace recording and replay."""

import json

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.trace import TraceRecorder, TraceReplayWorkload
from repro.workloads.synthetic import ZipfWorkload

CONFIG = SimulationConfig(dram_pages=(128,), pm_pages=(512,))


def record(tmp_path, workload=None):
    path = tmp_path / "trace.txt"
    inner = workload or ZipfWorkload(pages=100, ops=300, seed=4, write_ratio=0.3)
    recorder = TraceRecorder(inner, path)
    result = run_workload(recorder, CONFIG, policy="static")
    return path, result


def test_record_produces_header_and_lines(tmp_path):
    path, result = record(tmp_path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["version"] == 1
    assert header["workload"] == "zipf"
    assert len(header["processes"]) == 1
    assert len(lines) - 1 == result.accesses == 300


def test_replay_reproduces_the_run(tmp_path):
    path, original = record(tmp_path)
    replay = TraceReplayWorkload(path)
    replayed = run_workload(replay, CONFIG, policy="static")
    assert replayed.accesses == original.accesses
    assert replayed.operations == original.operations
    # Same accesses on the same config and policy: identical timing.
    assert replayed.elapsed_ns == original.elapsed_ns


def test_replay_on_a_different_policy(tmp_path):
    path, __ = record(tmp_path)
    replayed = run_workload(TraceReplayWorkload(path), CONFIG, policy="multiclock")
    assert replayed.policy == "multiclock"
    assert replayed.accesses == 300


def test_replay_footprint_from_header(tmp_path):
    path, __ = record(tmp_path)
    assert TraceReplayWorkload(path).footprint_pages() == 100


def test_replay_preserves_write_flags(tmp_path):
    path, __ = record(tmp_path)
    replay = TraceReplayWorkload(path)
    machine = Machine(CONFIG, "static")
    replay.setup(machine)
    writes = sum(1 for access in replay.accesses() if access.is_write)
    assert 0 < writes < 300


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text('{"version": 99, "processes": []}\n')
    with pytest.raises(ValueError, match="version"):
        TraceReplayWorkload(path)


def test_malformed_line_reports_location(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text(
        '{"version": 1, "processes": [{"name": "p", "home_socket": 0, '
        '"regions": [[0, 10, true, false]]}]}\n'
        "0 5 r 1 -\n"
        "garbage\n"
    )
    replay = TraceReplayWorkload(path)
    machine = Machine(CONFIG, "static")
    replay.setup(machine)
    with pytest.raises(ValueError, match=":3"):
        list(replay.accesses())
