"""Unit tests for the six GAPBS kernels: correctness of the algorithms
plus the page-touch emission contract."""

import networkx as nx
import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import PAGE_SIZE, SimulationConfig
from repro.workloads.gapbs import KERNELS, Graph
from repro.workloads.gapbs.base import (
    NEIGHBORS_BASE,
    OFFSETS_BASE,
    PROP_BASE,
)
from repro.workloads.gapbs.cc import ConnectedComponentsWorkload
from repro.workloads.gapbs.pagerank import PageRankWorkload
from repro.workloads.gapbs.tc import TriangleCountWorkload

CONFIG = SimulationConfig(dram_pages=(256,), pm_pages=(2048,))


@pytest.fixture(scope="module")
def small_graph():
    return Graph.uniform(200, 600, seed=3)


def drive(workload):
    machine = Machine(CONFIG, "static")
    return run_workload(workload, CONFIG, machine=machine)


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for v in graph.neigh(u).tolist():
            g.add_edge(u, v)
    return g


def test_all_six_kernels_registered():
    assert set(KERNELS) == {"bfs", "sssp", "pr", "cc", "bc", "tc"}


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_runs_and_touches_pages(small_graph, name):
    workload = KERNELS[name](small_graph, trials=1, seed=1)
    result = drive(workload)
    assert result.accesses > 0
    assert result.operations == 1  # one trial = one operation


def test_trials_count_as_operations(small_graph):
    workload = KERNELS["bfs"](small_graph, trials=3, seed=1)
    result = drive(workload)
    assert result.operations == 3


def test_cc_matches_networkx(small_graph):
    workload = ConnectedComponentsWorkload(small_graph, max_rounds=50)
    drive(workload)
    assert workload.final_components is not None
    expected = list(nx.connected_components(to_networkx(small_graph)))
    # Same partition: pages in one component share a label.
    labels = workload.final_components
    for component in expected:
        component_labels = {labels[v] for v in component}
        assert len(component_labels) == 1


def test_triangle_count_matches_networkx():
    graph = Graph.uniform(60, 200, seed=8)
    workload = TriangleCountWorkload(graph)
    drive(workload)
    expected = sum(nx.triangles(to_networkx(graph)).values()) // 3
    assert workload.triangles == expected


def test_pagerank_sums_to_one(small_graph):
    workload = PageRankWorkload(small_graph, iterations=5)
    drive(workload)
    assert workload.final_ranks is not None
    total = sum(workload.final_ranks)
    # Dangling mass leaks in push PR; the total stays near 1.
    assert 0.5 < total <= 1.001


def test_touch_regions_are_disjoint(small_graph):
    workload = KERNELS["pr"](small_graph, trials=1, seed=1)
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    seen_regions = set()
    for access in workload.accesses():
        if access.vpage < NEIGHBORS_BASE:
            seen_regions.add("offsets")
        elif access.vpage < PROP_BASE:
            seen_regions.add("edges-or-weights")
        else:
            seen_regions.add("props")
        machine.touch(access.process, access.vpage, is_write=access.is_write)
    assert seen_regions == {"offsets", "edges-or-weights", "props"}


def test_neighbor_touch_lines_reflect_range(small_graph):
    workload = KERNELS["bfs"](small_graph, trials=1, seed=1)
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    hub = max(range(small_graph.n), key=small_graph.degree)
    touches = list(workload.touch_neighbors(hub))
    total_lines = sum(t.lines for t in touches)
    byte_span = small_graph.degree(hub) * 4
    assert total_lines >= byte_span // 64
    assert all(t.lines <= PAGE_SIZE // 64 for t in touches)


def test_load_workload_separates_load_from_trials(small_graph):
    kernel = KERNELS["bfs"](small_graph, trials=1, seed=1)
    machine = Machine(CONFIG, "static")
    load_result = run_workload(kernel.load_workload(), CONFIG, machine=machine)
    trial_result = run_workload(kernel, CONFIG, machine=machine)
    assert kernel.loaded
    assert load_result.accesses > 0
    # The trial run must not repeat the sequential load pass.
    assert trial_result.accesses < 2 * load_result.accesses + trial_result.operations * small_graph.m_directed * 4


def test_footprint_counts_all_regions(small_graph):
    bfs = KERNELS["bfs"](small_graph)
    sssp = KERNELS["sssp"](small_graph)
    bc = KERNELS["bc"](small_graph)
    assert sssp.footprint_pages() > bfs.footprint_pages()  # weights array
    assert bc.footprint_pages() > bfs.footprint_pages()  # four property arrays


def test_sssp_distances_match_networkx():
    graph = Graph.uniform(80, 240, seed=6)
    workload = KERNELS["sssp"](graph, trials=1, seed=1)
    machine = Machine(CONFIG, "static")
    workload.setup(machine)
    # Re-run the kernel logic capturing distances via a fresh Dijkstra.
    import heapq

    from repro.sim.rng import make_rng

    rng = make_rng(1, "sssp-src-0")
    source = int(rng.integers(0, graph.n))
    dist = {source: 0}
    heap = [(0, source)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        lo = int(graph.offsets[u])
        for k, v in enumerate(graph.neigh(u).tolist()):
            nd = d + int(workload.weights[lo + k])
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        lo = int(graph.offsets[u])
        for k, v in enumerate(graph.neigh(u).tolist()):
            w = int(workload.weights[lo + k])
            if g.has_edge(u, v):
                w = min(w, g[u][v]["weight"])
            g.add_edge(u, v, weight=w)
    expected = nx.single_source_dijkstra_path_length(g, source, weight="weight")
    # networkx uses the min weight of the two directions per undirected
    # edge, so its distances lower-bound ours; reachability must agree.
    assert set(expected) == set(dist)
    for v, d in expected.items():
        assert dist[v] >= d
