"""Unit tests for the YCSB workload generators."""

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.ycsb import (
    EXECUTION_SEQUENCE,
    WORKLOAD_MIXES,
    YCSBSession,
)

CONFIG = SimulationConfig(dram_pages=(512,), pm_pages=(4096,))


def make_loaded_session(n_records=500, machine=None):
    session = YCSBSession(n_records, value_size=512, seed=9)
    machine = machine or Machine(CONFIG, "static")
    run_workload(session.load_phase(), CONFIG, machine=machine)
    return session, machine


def test_mixes_match_paper_description():
    assert WORKLOAD_MIXES["A"].read == 0.5 and WORKLOAD_MIXES["A"].update == 0.5
    assert WORKLOAD_MIXES["B"].read == 0.95
    assert WORKLOAD_MIXES["C"].read == 1.0
    assert WORKLOAD_MIXES["D"].insert == 0.05
    assert WORKLOAD_MIXES["D"].distribution == "latest"
    assert WORKLOAD_MIXES["F"].rmw == 0.5
    assert WORKLOAD_MIXES["W"].update == 1.0


def test_execution_sequence_puts_d_last():
    """Section V-B: D changes the record count, so it runs last."""
    assert EXECUTION_SEQUENCE[-1] == "D"
    assert set(EXECUTION_SEQUENCE) == {"A", "B", "C", "D", "F", "W"}


def test_workload_e_is_non_operational():
    session = YCSBSession(100)
    with pytest.raises(ValueError, match="non-operational"):
        session.phase("E", ops=10)


def test_unknown_workload_rejected():
    session = YCSBSession(100)
    with pytest.raises(KeyError):
        session.phase("Z", ops=10)


def test_load_phase_inserts_every_record():
    session, machine = make_loaded_session(300)
    assert session.store.n_records == 300
    assert session.next_key == 300


def test_phase_requires_load_first():
    session = YCSBSession(100)
    machine = Machine(CONFIG, "static")
    phase = session.phase("A", ops=10)
    with pytest.raises(RuntimeError):
        run_workload(phase, CONFIG, machine=machine)


def test_read_only_workload_c_never_writes():
    session, machine = make_loaded_session(300)
    phase = session.phase("C", ops=500)
    writes = sum(1 for access in _drive(phase, machine) if access.is_write)
    assert writes == 0


def test_write_only_workload_w_always_writes_data():
    session, machine = make_loaded_session(300)
    phase = session.phase("W", ops=200)
    ops_with_write = 0
    current_has_write = False
    for access in _drive(phase, machine):
        current_has_write = current_has_write or access.is_write
        if access.op_boundary:
            ops_with_write += current_has_write
            current_has_write = False
    assert ops_with_write == 200


def test_workload_d_grows_the_store():
    session, machine = make_loaded_session(300)
    before = session.next_key
    phase = session.phase("D", ops=2000)
    for __ in _drive(phase, machine):
        pass
    assert session.next_key > before


def test_zipfian_skew_concentrates_traffic():
    """The top 10% of keys should draw well over half the requests."""
    session, machine = make_loaded_session(1000)
    phase = session.phase("C", ops=4000)
    from collections import Counter

    data_touches = Counter()
    for access in _drive(phase, machine):
        if access.vpage >= session.store.data_base:
            data_touches[access.vpage] += 1
    counts = sorted(data_touches.values(), reverse=True)
    top_decile = sum(counts[: max(1, len(counts) // 10)])
    assert top_decile > 0.4 * sum(counts)


def test_latest_distribution_favors_new_keys():
    session, machine = make_loaded_session(1000)
    phase = session.phase("D", ops=3000)
    recent_reads = 0
    total_reads = 0
    store = session.store
    for access in _drive(phase, machine):
        if access.vpage >= store.data_base and not access.is_write:
            slot = access.vpage - store.data_base
            total_reads += 1
            if slot >= (session.next_key // store.items_per_page) * 3 // 4:
                recent_reads += 1
    assert total_reads > 0
    assert recent_reads / total_reads > 0.5


def test_deterministic_across_runs():
    def collect():
        session, machine = make_loaded_session(200)
        phase = session.phase("A", ops=300)
        return [(a.vpage, a.is_write) for a in _drive(phase, machine)]

    assert collect() == collect()


def test_footprint_exceeds_record_pages():
    session = YCSBSession(1000, value_size=1024)
    assert session.footprint_pages() > 1000 // session.store.items_per_page


def _drive(phase, machine):
    """Set up a phase and yield its accesses while applying them."""
    phase.setup(machine)
    for access in phase.accesses():
        machine.touch(access.process, access.vpage, is_write=access.is_write,
                      lines=access.lines)
        yield access
