"""Unit tests for the Tracer and its machine integration."""

import pytest

from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.trace import Tracer
from repro.workloads.synthetic import ZipfWorkload

CONFIG = SimulationConfig(
    dram_pages=(128,),
    pm_pages=(1024,),
    daemons=DaemonConfig(
        kpromoted_interval_s=0.001,
        kswapd_interval_s=0.001,
        hint_scan_interval_s=0.001,
    ),
    seed=7,
)


def traced_run(policy="multiclock", pages=400, ops=4000):
    machine = Machine(CONFIG, policy)
    tracer = machine.enable_tracing()
    workload = ZipfWorkload(pages, ops, seed=7, write_ratio=0.2)
    workload.setup(machine)
    machine.touch_batch(workload.accesses())
    return machine, tracer


def test_emit_counts_hits_and_assigns_monotonic_seq():
    machine = Machine(CONFIG, "static")
    tracer = machine.enable_tracing()
    tracer.emit("mm_page_alloc", 0, 1)
    tracer.emit("mm_page_alloc", 0, 2)
    tracer.emit("oom_kill", reason="test")
    assert tracer.hits == {"mm_page_alloc": 2, "oom_kill": 1}
    assert tracer.events_emitted == 3
    seqs = [e.seq for ring in tracer.buffers.values() for e in ring]
    assert sorted(seqs) == [1, 2, 3]


def test_events_route_to_per_node_rings():
    machine = Machine(CONFIG, "static")
    tracer = machine.enable_tracing()
    tracer.emit("mm_page_alloc", 0, 1)
    tracer.emit("mm_vmscan_demote", 1, 2, dest=0, scanner="kswapd")
    tracer.emit("oom_kill", reason="test")  # machine-wide → node -1
    assert set(tracer.buffers) == {0, 1, -1}


def test_enable_tracing_twice_raises():
    machine = Machine(CONFIG, "static")
    machine.enable_tracing()
    with pytest.raises(RuntimeError):
        machine.enable_tracing()


def test_tracer_rejects_nonpositive_capacity():
    machine = Machine(CONFIG, "static")
    with pytest.raises(ValueError):
        Tracer(machine.clock, capacity_per_node=0)


def test_multiclock_run_fires_the_expected_event_families():
    __, tracer = traced_run()
    assert tracer.hits.get("mm_page_alloc", 0) > 0
    assert tracer.hits.get("mm_migrate_pages", 0) > 0
    assert tracer.hits.get("kpromoted_promote", 0) > 0
    assert tracer.hits.get("mm_promote_list_add", 0) > 0
    assert tracer.hits.get("mm_lru_activate", 0) > 0
    assert tracer.complete


def test_timestamps_are_virtual_and_nondecreasing():
    machine, tracer = traced_run(ops=2000)
    last_by_node = {}
    for node_id, ring in tracer.buffers.items():
        stamps = [e.ts_ns for e in ring]
        assert stamps == sorted(stamps)
        assert all(0 <= ts <= machine.clock.now_ns for ts in stamps)
        last_by_node[node_id] = stamps[-1] if stamps else 0
    assert any(last_by_node.values())


def test_tracing_does_not_perturb_the_simulation():
    """The nop property, asserted at unit scale: identical clock and
    counters whether or not a tracer is installed."""

    def run(traced):
        machine = Machine(CONFIG, "multiclock")
        if traced:
            machine.enable_tracing()
        workload = ZipfWorkload(300, 3000, seed=7, write_ratio=0.2)
        workload.setup(machine)
        machine.touch_batch(workload.accesses())
        return machine.stats.snapshot(), machine.clock.now_ns

    assert run(True) == run(False)


def test_hits_survive_ring_overwrite():
    machine = Machine(CONFIG, "static")
    tracer = machine.enable_tracing(capacity_per_node=4)
    for pfn in range(20):
        tracer.trace_mm_page_alloc(0, pfn, True, False)
    assert tracer.hits["mm_page_alloc"] == 20
    assert len(tracer.buffers[0]) == 4
    assert tracer.events_dropped == 16
    assert not tracer.complete
