"""CLI tests for ``repro trace`` and ``repro chaos --trace-capacity``."""

import json

from repro.cli import main

ARGS = [
    "--workload", "zipf", "--pages", "300", "--ops", "2000",
    "--dram-pages", "128", "--pm-pages", "1024", "--interval", "0.002",
]


def test_trace_prints_summary_and_audits(capsys):
    assert main(["trace", *ARGS, "--audit"]) == 0
    out = capsys.readouterr().out
    assert "zipf on multiclock" in out
    assert "mm_page_alloc" in out
    assert "verdict: OK" in out


def test_trace_tail_and_filter(capsys):
    assert main(["trace", *ARGS, "--no-summary", "--tail", "3",
                 "--events", "mm_migrate"]) == 0
    out = capsys.readouterr().out
    assert "mm_migrate_pages" in out
    assert "mm_page_alloc" not in out


def test_trace_exports_ndjson_and_perfetto(tmp_path, capsys):
    ndjson = tmp_path / "ev.ndjson"
    perfetto = tmp_path / "ev.json"
    assert main(["trace", *ARGS, "--no-summary",
                 "--ndjson", str(ndjson), "--perfetto", str(perfetto)]) == 0
    lines = ndjson.read_text().splitlines()
    assert lines and all(json.loads(line)["event"] for line in lines)
    assert json.loads(perfetto.read_text())["traceEvents"]
    out = capsys.readouterr().out
    assert str(ndjson) in out


def test_chaos_trace_capacity_embeds_audits(tmp_path, capsys):
    out_path = tmp_path / "chaos.json"
    assert main([
        "chaos", *ARGS, "--policies", "static",
        "--trace-capacity", str(1 << 20), "--out", str(out_path),
    ]) == 0
    report = json.loads(out_path.read_text())
    for cell in report["cells"]:
        assert cell["trace_audit"]["mismatches"] == 0
