"""Unit tests for the trace ring buffer and event record."""

import pytest

from repro.trace.buffer import RingBuffer, TraceEvent


def event(seq, name="mm_page_alloc", node=0, pfn=-1, **fields):
    return TraceEvent(seq=seq, ts_ns=seq * 10, name=name, node_id=node,
                      pfn=pfn, fields=fields)


def test_append_preserves_order_when_not_full():
    ring = RingBuffer(capacity=8)
    for i in range(5):
        ring.append(event(i))
    assert [e.seq for e in ring] == [0, 1, 2, 3, 4]
    assert ring.dropped == 0
    assert len(ring) == 5


def test_full_ring_overwrites_oldest():
    ring = RingBuffer(capacity=4)
    for i in range(10):
        ring.append(event(i))
    assert [e.seq for e in ring] == [6, 7, 8, 9]
    assert ring.dropped == 6
    assert len(ring) == 4


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)


def test_to_dict_includes_pfn_only_when_present():
    with_pfn = event(1, pfn=42, dest=1).to_dict()
    assert with_pfn["pfn"] == 42
    assert with_pfn["dest"] == 1
    assert with_pfn["event"] == "mm_page_alloc"
    without = event(2).to_dict()
    assert "pfn" not in without


def test_wraparound_iteration_is_oldest_first():
    ring = RingBuffer(capacity=3)
    for i in range(4):  # exactly one wrap
        ring.append(event(i))
    seqs = [e.seq for e in ring]
    assert seqs == sorted(seqs) == [1, 2, 3]
