"""The acceptance bar: zero counter/trace mismatches on the chaos matrix.

Runs the same fault schedule as ``tests/chaos/test_chaos_matrix.py`` with
the tracepoint layer armed on every cell, so the lifecycle auditor gets
to disagree with the StatsBook under copy failures, retries, capacity
loss, and OOM pressure — the conditions accounting bugs hide in.
"""

import pytest

from repro.faults import CapacityLoss, CopyFailures, FaultPlan, run_chaos
from repro.policies.base import _REGISTRY
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


def chaos_config():
    return SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=42,
    )


def acceptance_plan(seed=42):
    return FaultPlan(seed=seed, events=(
        CopyFailures(start_s=0.0005, end_s=30.0, rate=0.2),
        CapacityLoss(start_s=0.002, end_s=0.008, node_id=1, frames=512),
    ))


def workloads(ops=6000, pages=800):
    return {"zipf": lambda: ZipfWorkload(pages, ops, seed=42)}


@pytest.mark.parametrize("policy", sorted(_REGISTRY))
def test_audit_is_clean_under_the_acceptance_schedule(policy):
    report = run_chaos(
        [policy], workloads(), acceptance_plan(), chaos_config(),
        trace_capacity=1 << 20,
    )
    (cell,) = report.cells
    audit = cell.trace_audit
    assert audit is not None
    assert audit["mismatches"] == 0, audit["mismatch_details"]
    assert audit["complete"], "ring sized for the whole run overwrote events"
    assert audit["events_replayed"] > 0
    assert cell.clean
    assert cell.to_dict()["trace_audit"] == audit


def test_untraced_matrix_keeps_its_report_shape():
    report = run_chaos(["static"], workloads(ops=1500, pages=300),
                       acceptance_plan(), chaos_config())
    (cell,) = report.cells
    assert cell.trace_audit is None
    assert "trace_audit" not in cell.to_dict()


def test_audit_mismatch_marks_the_cell_dirty():
    report = run_chaos(["static"], workloads(ops=1500, pages=300),
                       acceptance_plan(), chaos_config(), trace_capacity=1 << 20)
    (cell,) = report.cells
    assert cell.clean
    dirty = type(cell)(
        **{**cell.__dict__, "trace_audit": {**cell.trace_audit, "mismatches": 2}}
    )
    assert not dirty.clean
