"""Unit tests for the page-lifecycle auditor."""

import pytest

from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.trace import audit_machine
from repro.workloads.synthetic import ZipfWorkload

CONFIG = SimulationConfig(
    dram_pages=(128,),
    pm_pages=(1024,),
    daemons=DaemonConfig(
        kpromoted_interval_s=0.001,
        kswapd_interval_s=0.001,
        hint_scan_interval_s=0.001,
    ),
    seed=7,
)


def run_traced(policy="multiclock", *, capacity=None, pages=400, ops=5000):
    machine = Machine(CONFIG, policy)
    machine.enable_tracing(capacity_per_node=capacity)
    workload = ZipfWorkload(pages, ops, seed=7, write_ratio=0.2)
    workload.setup(machine)
    machine.touch_batch(workload.accesses())
    return machine


def test_audit_requires_a_tracer():
    machine = Machine(CONFIG, "static")
    with pytest.raises(RuntimeError):
        audit_machine(machine)


@pytest.mark.parametrize("policy", ["multiclock", "static", "nimble", "autonuma"])
def test_round_trip_audit_is_clean(policy):
    machine = run_traced(policy)
    report = audit_machine(machine)
    assert report.ok, report.render()
    assert report.complete
    assert report.checks >= 15
    assert report.events_replayed > 0
    assert "verdict: OK" in report.render()


def test_tampered_counter_is_caught():
    """The auditor exists to catch accounting drift: fake one promotion
    the trace never saw and the cross-check must flag it."""
    machine = run_traced("multiclock")
    machine.stats.inc("kpromoted.promoted")
    report = audit_machine(machine)
    assert not report.ok
    assert any("kpromoted_promote" in m for m in report.mismatches)
    assert "MISMATCH" in report.render()


def test_tampered_replay_counter_is_caught():
    machine = run_traced("multiclock")
    machine.stats.inc("migrate.demotions", 3)
    report = audit_machine(machine)
    assert not report.ok
    assert any("migrate.demotions" in m for m in report.mismatches)


def test_overwritten_rings_skip_replay_but_keep_counter_checks():
    machine = run_traced("multiclock", capacity=32)
    tracer = machine.system.trace
    assert not tracer.complete  # the tiny ring must have overwritten
    report = audit_machine(machine)
    assert not report.complete
    assert report.events_replayed == 0
    assert report.notes  # explains why replay was skipped
    # Counter cross-checks compare hits, which survive overwrites.
    assert report.ok, report.render()
    assert report.checks == 10


def test_mid_run_enable_baselines_the_counters():
    """Tracing attached after warm-up must still audit clean: the
    baseline snapshot makes every cross-check a delta comparison."""
    machine = Machine(CONFIG, "multiclock")
    warm = ZipfWorkload(300, 2000, seed=7, write_ratio=0.2)
    warm.setup(machine)
    machine.touch_batch(warm.accesses())
    machine.enable_tracing()
    more = ZipfWorkload(300, 2000, seed=11, write_ratio=0.2)
    more.setup(machine)
    machine.touch_batch(more.accesses())
    report = audit_machine(machine)
    # Replay may see migrations of pages allocated before tracing began;
    # counter cross-checks must be exact regardless.
    counter_mismatches = [m for m in report.mismatches if "events emitted" in m]
    assert counter_mismatches == [], report.render()
