"""Unit tests for trace export: merged iteration, NDJSON, perfetto, text."""

import json

from repro.machine import Machine
from repro.sim.config import SimulationConfig
from repro.trace import (
    iter_events,
    render_summary,
    render_tail,
    write_ndjson,
    write_perfetto,
)

CONFIG = SimulationConfig(dram_pages=(64,), pm_pages=(256,))


def tracer_with_events():
    machine = Machine(CONFIG, "static")
    tracer = machine.enable_tracing()
    tracer.trace_mm_page_alloc(0, 1, True, False)
    tracer.trace_mm_vmscan_demote(0, 1, 1, "kswapd")
    tracer.trace_mm_page_alloc(1, 2, True, True)
    tracer.trace_oom_kill("test pressure")
    return tracer


def test_iter_events_merges_rings_in_emission_order():
    tracer = tracer_with_events()
    events = list(iter_events(tracer))
    assert [e.seq for e in events] == [1, 2, 3, 4]
    assert [e.name for e in events] == [
        "mm_page_alloc", "mm_vmscan_demote", "mm_page_alloc", "oom_kill",
    ]


def test_iter_events_prefix_filter():
    tracer = tracer_with_events()
    names = [e.name for e in iter_events(tracer, prefixes=["mm_page", "oom"])]
    assert names == ["mm_page_alloc", "mm_page_alloc", "oom_kill"]


def test_ndjson_round_trips(tmp_path):
    tracer = tracer_with_events()
    out = tmp_path / "events.ndjson"
    write_ndjson(iter_events(tracer), out)
    lines = out.read_text().splitlines()
    assert len(lines) == 4
    first = json.loads(lines[0])
    assert first["event"] == "mm_page_alloc"
    assert first["pfn"] == 1
    assert first["anon"] is True
    last = json.loads(lines[-1])
    assert last["event"] == "oom_kill"
    assert "pfn" not in last  # not about one page


def test_perfetto_shape(tmp_path):
    tracer = tracer_with_events()
    out = tmp_path / "trace.json"
    write_perfetto(iter_events(tracer), out)
    doc = json.loads(out.read_text())
    records = doc["traceEvents"]
    assert len(records) == 4
    assert {r["tid"] for r in records} == {0, 1, -1}
    demote = next(r for r in records if r["name"] == "mm_vmscan_demote")
    assert demote["ph"] == "i"
    assert demote["args"]["dest"] == 1
    assert demote["args"]["pfn"] == 1


def test_render_tail_shows_last_events():
    tracer = tracer_with_events()
    text = render_tail(list(iter_events(tracer)), 2)
    assert "oom_kill" in text
    assert "mm_page_alloc" in text
    assert "mm_vmscan_demote" not in text


def test_render_tail_empty():
    assert render_tail([], 5) == "(no events)"


def test_render_summary_lists_every_event_name():
    tracer = tracer_with_events()
    text = render_summary(tracer)
    for name in ("mm_page_alloc", "mm_vmscan_demote", "oom_kill", "total"):
        assert name in text
    assert "(0 overwritten)" in text
