"""Tracing-off runs must be bit-identical to the recorded baseline.

``tests/data/baseline_runresults.json`` was generated on the tree as it
stood *before* the tracepoint layer existed.  Every policy fingerprint —
counters, clocks, operation counts — must still come out byte-for-byte
the same with tracing compiled out (no tracer installed), which is the
"tracepoints are nops when off" guarantee measured at full-run scale.
"""

import json
from pathlib import Path

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

BASELINE = Path(__file__).parent.parent / "data" / "baseline_runresults.json"


def baseline_config():
    return SimulationConfig(
        dram_pages=(512,),
        pm_pages=(4096,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )


def fingerprint(policy, *, traced=False):
    machine = Machine(baseline_config(), policy)
    if traced:
        machine.enable_tracing()
    workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
    result = run_workload(workload, machine.config, machine=machine)
    return {
        "operations": result.operations,
        "accesses": result.accesses,
        "elapsed_ns": result.elapsed_ns,
        "app_ns": result.app_ns,
        "system_ns": result.system_ns,
        "ops_fallback": result.ops_fallback,
        "counters": dict(sorted(result.counters.items())),
    }


RECORDED = json.loads(BASELINE.read_text())


@pytest.mark.parametrize("policy", sorted(RECORDED))
def test_tracing_off_matches_the_recorded_baseline(policy):
    assert fingerprint(policy) == RECORDED[policy]


def test_tracing_on_changes_nothing_either():
    """Armed tracing observes; it must never steer."""
    assert fingerprint("multiclock", traced=True) == fingerprint("multiclock")
