"""REPRO_SCALE validation: operator mistakes get one clean line, valid
values are cached and applied."""

import pytest

from repro.experiments.common import scale


def test_default_scale_is_identity(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale(100) == 100


def test_valid_scale_applies(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert scale(100) == 250


def test_scale_floors_at_one(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    assert scale(10) == 1


@pytest.mark.parametrize("bad", ["fast", "", "0", "-1", "nan", "inf", "-inf", "1e999"])
def test_malformed_scale_is_one_clean_error(monkeypatch, bad):
    monkeypatch.setenv("REPRO_SCALE", bad)
    with pytest.raises(ValueError, match="invalid REPRO_SCALE"):
        scale(100)


def test_factor_is_cached_per_value(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "3")
    assert scale(10) == 30
    # A changed value is revalidated, not served from the stale cache.
    monkeypatch.setenv("REPRO_SCALE", "4")
    assert scale(10) == 40
    monkeypatch.setenv("REPRO_SCALE", "oops")
    with pytest.raises(ValueError):
        scale(10)


def test_cli_routes_bad_scale_through_error_path(monkeypatch, capsys):
    """The CLI contract from PR 2: operator mistakes exit 2 with one
    ``error:`` line, never a traceback."""
    from repro.cli import main as cli_main

    monkeypatch.setenv("REPRO_SCALE", "fast")
    rc = cli_main(["experiment", "fig5"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "invalid REPRO_SCALE" in err
    assert "Traceback" not in err
