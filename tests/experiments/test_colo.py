"""The colocation experiment: heterogeneous KV tenants, memcg armed."""

import json

import pytest

from repro.experiments.colo import (
    TENANT_PROFILES,
    build_colo_tenants,
    render_colo,
    run_colo,
)
from repro.mm.debug import check_invariants

SMALL = dict(records_per_tenant=300, ops_per_tenant=900)


def test_tenants_are_heterogeneous():
    tenants = build_colo_tenants(3, 100, 100)
    assert len({t.alpha for t in tenants}) == 3
    assert len({t.phases for t in tenants}) == 3
    assert len({t.seed for t in tenants}) == 3
    # More tenants than profiles cycles the profile table.
    many = build_colo_tenants(len(TENANT_PROFILES) + 1, 100, 100)
    assert many[0].alpha == many[len(TENANT_PROFILES)].alpha
    assert many[0].seed != many[len(TENANT_PROFILES)].seed


def test_run_colo_validation():
    with pytest.raises(ValueError):
        run_colo(n_tenants=0)
    # More limits than tenants is an operator error, not a silent drop.
    with pytest.raises(ValueError):
        run_colo(n_tenants=2, limits=[1, 2, 3], **SMALL)


def test_every_tenant_completes_without_limits():
    result = run_colo(n_tenants=2, **SMALL)
    rows = result["rows"]
    assert len(rows) == 2
    for row in rows:
        assert not row.killed
        # load phase + traffic ops
        assert row.ops_completed == 300 + 900
        assert row.p50_ns is not None and row.p99_ns is not None
        assert row.p99_ns >= row.p50_ns
    assert result["oom_kills"] == 0
    assert check_invariants(result["machine"].system) == []


def test_limit_squeezes_one_tenant():
    result = run_colo(n_tenants=2, limits=[None, 60], **SMALL)
    free, capped = result["rows"]
    assert capped.limit_pages == 60
    assert capped.rss_pages <= 60
    assert capped.swap_pages > 0  # the squeezed footprint went somewhere
    assert free.rss_pages > capped.rss_pages


def test_oom_kill_spares_cotenants():
    result = run_colo(
        n_tenants=3, records_per_tenant=600, ops_per_tenant=1500,
        dram_pages=96, pm_pages=256, swap_pages=64,
    )
    rows = result["rows"]
    killed = [row for row in rows if row.killed]
    survivors = [row for row in rows if not row.killed]
    assert killed, "overcommitted machine must produce an OOM kill"
    assert survivors, "co-tenants must survive the kill"
    assert result["oom_kills"] >= 1
    for row in killed:
        assert row.rss_pages == 0  # fully torn down
    for row in survivors:
        assert row.ops_completed == 600 + 1500  # ran to completion
    assert check_invariants(result["machine"].system) == []


def test_per_tenant_histograms_in_registry():
    result = run_colo(n_tenants=2, **SMALL)
    snapshot = result["registry"].to_json()
    for row in result["rows"]:
        data = snapshot["histograms"][f"tenant_{row.name}_latency_ns"]
        assert data["count"] == row.ops_completed
        assert data["p50"] == row.p50_ns and data["p99"] == row.p99_ns
    json.dumps(snapshot)  # feeds `repro report --snapshot`: must serialise


def test_render_mentions_every_tenant_and_the_verdict():
    result = run_colo(n_tenants=2, limits=[None, 60], **SMALL)
    text = render_colo(result)
    for row in result["rows"]:
        assert row.name in text
    assert "p50_ns" in text and "p99_ns" in text
    assert "tenants finished" in text


def test_colo_sweep_runner_payload_is_plain_json():
    from repro.sweep.runners import colo_cell

    payload = colo_cell({
        "n_tenants": 2, "records_per_tenant": 200, "ops_per_tenant": 400,
        "limits": [None, 50], "seed": 9,
    })
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped == payload
    assert [t["name"] for t in payload["tenants"]] == ["tenant0", "tenant1"]
    assert payload["tenants"][1]["rss_pages"] <= 50
