"""Smoke tests for every experiment module at miniature scale.

The benchmarks run the experiments at figure scale and assert the
paper's shapes; these tests only assert that each experiment's plumbing
works — structure of results, renderability, determinism — so failures
in experiment code surface in the fast suite.
"""

import pytest

from repro.experiments.ablation_dirty import render_ablation_dirty, run_ablation_dirty
from repro.experiments.ablation_ratio import render_ablation_ratio, run_ablation_ratio
from repro.experiments.common import TIME_SCALE, run_ycsb_sequence, scale, scaled_config
from repro.experiments.fig1_heatmaps import render_fig1, run_fig1
from repro.experiments.fig2_frequency import render_fig2, run_fig2
from repro.experiments.fig4_transitions import render_fig4, run_fig4
from repro.experiments.fig5_ycsb import render_fig5, run_fig5
from repro.experiments.fig6_gapbs import render_fig6, run_fig6
from repro.experiments.fig7_memory_mode import render_fig7, run_fig7
from repro.experiments.fig8_promotions import render_fig8, run_fig8
from repro.experiments.fig9_reaccess import render_fig9, run_fig9
from repro.experiments.fig10_interval import render_fig10, run_fig10
from repro.experiments.overhead import render_overhead, run_overhead
from repro.experiments.table1_features import render_table1, run_table1
from repro.experiments.table2_inventory import render_table2, run_table2


def test_scale_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.0")
    assert scale(100) == 200
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    assert scale(100) == 1  # floored at one


def test_scaled_config_applies_time_scale():
    config = scaled_config(dram_pages=100, pm_pages=400, interval_s=1.0)
    assert config.daemons.kpromoted_interval_s == pytest.approx(TIME_SCALE)
    assert config.stats_window_s == pytest.approx(20.0 * TIME_SCALE)


def test_run_policies_runs_fresh_instances():
    from repro.experiments.common import run_policies
    from repro.workloads.synthetic import ZipfWorkload

    config = scaled_config(dram_pages=128, pm_pages=1024)
    results = run_policies(
        lambda: ZipfWorkload(pages=100, ops=200, seed=1),
        config,
        policies=("static", "multiclock"),
    )
    assert set(results) == {"static", "multiclock"}
    assert all(r.operations == 200 for r in results.values())


def test_run_ycsb_sequence_returns_all_phases():
    config = scaled_config(dram_pages=128, pm_pages=1024)
    results = run_ycsb_sequence(
        "static", config, n_records=300, ops_per_phase=200, phases=("A", "C")
    )
    # The warm-up Load phase is reported too; paper-phase keys unchanged.
    assert set(results) == {"load", "A", "C"}
    assert all(results[phase].operations == 200 for phase in ("A", "C"))
    assert results["load"].operations == 300  # one insert per record
    assert not results["load"].ops_fallback


def test_fig1_smoke():
    heatmaps = run_fig1(pages=200, segments=6, ops_per_segment=500)
    assert len(heatmaps) == 4
    assert render_fig1(heatmaps)


def test_fig2_smoke():
    analyses = run_fig2(pages=200, segments=6, ops_per_segment=500)
    assert len(analyses) == 4
    assert "aggregate" not in render_fig2(analyses)  # table view, not raw dump
    assert "multi/single" in render_fig2(analyses)


def test_fig4_smoke():
    data = run_fig4(ops=5000)
    assert "observed_states" in data
    assert "edge 10" in render_fig4(data)


def test_fig5_smoke():
    comparisons = run_fig5(
        n_records=400, ops_per_phase=500,
        policies=("static", "multiclock"), phases=("A",),
    )
    assert set(comparisons) == {"A"}
    assert comparisons["A"].values["static"] == pytest.approx(1.0)
    assert render_fig5(comparisons)


def test_fig6_smoke():
    comparisons = run_fig6(
        scale_exp=8, edge_factor=4, trials=1,
        policies=("static", "multiclock"), kernels=("bfs",),
    )
    assert set(comparisons) == {"bfs"}
    assert render_fig6(comparisons)


def test_fig7_smoke():
    comparisons = run_fig7(
        n_records=400, ops_per_phase=500, pr_scale=8, phases=("A",)
    )
    assert "ycsb-A" in comparisons and "gapbs-pr" in comparisons
    assert render_fig7(comparisons)


def test_fig8_smoke():
    series = run_fig8(n_records=400, ops=1500, policies=("multiclock",))
    assert "multiclock" in series
    assert render_fig8(series)


def test_fig9_smoke():
    series = run_fig9(n_records=400, ops=1500, policies=("multiclock",))
    assert series["multiclock"].overall_percentage >= 0.0
    assert render_fig9(series)


def test_fig10_smoke():
    sweeps = run_fig10(
        n_records=400, ops=800, intervals=(0.5, 5.0), policies=("multiclock",)
    )
    assert set(sweeps["multiclock"]) == {0.5, 5.0}
    assert render_fig10(sweeps)


def test_overhead_smoke():
    rows = run_overhead(n_records=400, ops=800, policies=("static", "multiclock"))
    assert {row.policy for row in rows} == {"static", "multiclock"}
    assert render_overhead(rows)


def test_ablation_ratio_smoke():
    points = run_ablation_ratio(n_records=400, ops=600, fractions=(0.25, 0.75))
    assert len(points) == 2
    assert render_ablation_ratio(points)


def test_ablation_dirty_smoke():
    rows = run_ablation_dirty(n_records=400, ops=600)
    assert {row.phase for row in rows} == {"C", "W"}
    assert render_ablation_dirty(rows)


def test_table1_rows_complete():
    rows = run_table1()
    assert len(rows) >= 7
    assert render_table1()


def test_table2_counts_modules():
    rows = run_table2()
    assert len(rows) > 40  # many small modules, as DESIGN.md promises
    assert render_table2()


def test_fig5_is_deterministic():
    first = run_fig5(
        n_records=300, ops_per_phase=300,
        policies=("static", "multiclock"), phases=("A",),
    )
    second = run_fig5(
        n_records=300, ops_per_phase=300,
        policies=("static", "multiclock"), phases=("A",),
    )
    assert first["A"].values == second["A"].values
