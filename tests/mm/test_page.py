"""Unit tests for Page flags and reverse-map harvesting."""

from repro.mm.flags import PageFlags
from repro.mm.page import Page
from repro.mm.page_table import PageTable


def test_pages_get_unique_pfns():
    assert Page(0).pfn != Page(0).pfn


def test_flag_set_clear_test():
    page = Page(0)
    assert not page.test(PageFlags.ACTIVE)
    page.set(PageFlags.ACTIVE)
    assert page.test(PageFlags.ACTIVE)
    page.clear(PageFlags.ACTIVE)
    assert not page.test(PageFlags.ACTIVE)


def test_test_and_clear():
    page = Page(0)
    page.set(PageFlags.REFERENCED)
    assert page.test_and_clear(PageFlags.REFERENCED) is True
    assert page.test_and_clear(PageFlags.REFERENCED) is False


def test_flags_are_independent():
    page = Page(0)
    page.set(PageFlags.ACTIVE)
    page.set(PageFlags.DIRTY)
    page.clear(PageFlags.ACTIVE)
    assert page.test(PageFlags.DIRTY)


def test_harvest_accessed_clears_all_mappings():
    page = Page(0)
    pt1 = PageTable(1)
    pt2 = PageTable(2)
    pte1 = pt1.map(10, page)
    pte2 = pt2.map(20, page)
    pte1.accessed = True
    pte2.accessed = True
    assert page.harvest_accessed() is True
    assert not pte1.accessed and not pte2.accessed
    assert page.harvest_accessed() is False


def test_harvest_accessed_any_mapping_counts():
    page = Page(0)
    pt1 = PageTable(1)
    pt2 = PageTable(2)
    pt1.map(10, page)
    pte2 = pt2.map(20, page)
    pte2.accessed = True
    assert page.harvest_accessed() is True


def test_any_accessed_does_not_clear():
    page = Page(0)
    pte = PageTable(1).map(0, page)
    pte.accessed = True
    assert page.any_accessed() is True
    assert pte.accessed is True


def test_unmapped_page_is_never_accessed():
    page = Page(0)
    assert not page.mapped
    assert page.harvest_accessed() is False


def test_anon_vs_file():
    assert Page(0, is_anon=True).is_anon
    assert not Page(0, is_anon=False).is_anon
