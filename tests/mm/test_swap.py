"""Unit tests for the backing store."""

import pytest

from repro.mm.swap import BackingStore


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BackingStore(0)


def test_swap_out_and_in_roundtrip():
    store = BackingStore(10)
    store.swap_out(1, 100)
    assert store.is_swapped(1, 100)
    assert store.swapped_pages == 1
    store.swap_in(1, 100)
    assert not store.is_swapped(1, 100)
    assert store.swap_outs == 1
    assert store.swap_ins == 1


def test_double_swap_out_rejected():
    store = BackingStore(10)
    store.swap_out(1, 100)
    with pytest.raises(ValueError):
        store.swap_out(1, 100)


def test_swap_in_missing_rejected():
    store = BackingStore(10)
    with pytest.raises(KeyError):
        store.swap_in(1, 100)


def test_swap_full_raises():
    store = BackingStore(2)
    store.swap_out(1, 0)
    store.swap_out(1, 1)
    assert store.swap_full
    with pytest.raises(MemoryError):
        store.swap_out(1, 2)


def test_keys_are_per_process():
    store = BackingStore(10)
    store.swap_out(1, 100)
    assert not store.is_swapped(2, 100)


def test_file_accounting():
    store = BackingStore(10)
    store.writeback_file()
    store.refault_file()
    assert store.file_writebacks == 1
    assert store.file_refaults == 1
