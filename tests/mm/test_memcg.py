"""Per-tenant (memcg) accounting: books, limits, OOM victims, invariants.

Covers the colocation substrate end to end: charge/uncharge/migration
bookkeeping, targeted reclaim at the limit, proportional scan weight,
OOM group kill semantics (co-tenants survive, frames return, the trace
carries the victim pid), the ``memcg-accounting`` invariant sweep, and
the bit-identity of armed-but-unlimited runs.
"""

import pytest

from repro.machine import Machine
from repro.mm.debug import check_invariants
from repro.mm.memcg import ProcessKilledError
from repro.run import run_workload
from repro.sim.config import SimulationConfig
from repro.workloads.multitenant import MultiTenantWorkload
from repro.workloads.synthetic import UniformWorkload, ZipfWorkload


def checks_of(violations):
    return {v.check for v in violations}


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "multiclock")


def map_and_touch(machine, process, start, pages):
    process.mmap_anon(start, pages)
    for vpage in range(start, start + pages):
        machine.system.touch(process, vpage)


# -- the charge path ---------------------------------------------------------


def test_pages_charged_to_faulting_group(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 10)
    assert group.rss_total == 10
    assert sum(group.rss.values()) == 10


def test_groups_auto_created_on_first_charge(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("lazy")
    map_and_touch(machine, process, 0, 4)
    group = memcg.group_of(process.pid)
    assert group is not None and group.name == "lazy"
    assert group.rss_total == 4
    assert group.limit_pages is None


def test_discard_uncharges(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 10)
    region = process.regions[0]
    machine.system.discard_region(process, region)
    assert group.rss_total == 0
    assert all(v == 0 for v in group.rss.values())


def test_migration_moves_charge_between_nodes(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 8)
    # Let kpromoted/kswapd shuffle pages across tiers, then reconcile.
    machine.clock.advance_app(int(1e9))
    machine.drain_daemons()
    store = machine.system.pagestore
    recount: dict[int, int] = {}
    for node in machine.system.nodes.values():
        for lst in node.lruvec.all_lists():
            for page in lst:
                if int(store.memcg_id[page.pfn]) == group.id:
                    recount[node.node_id] = recount.get(node.node_id, 0) + 1
    assert {k: v for k, v in group.rss.items() if v} == recount


def test_attach_twice_rejected(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    g1 = memcg.create_group("g1")
    g2 = memcg.create_group("g2")
    memcg.attach(process, g1)
    with pytest.raises(ValueError):
        memcg.attach(process, g2)


def test_enable_twice_rejected(machine):
    machine.enable_memcg()
    with pytest.raises(RuntimeError):
        machine.enable_memcg()


def test_has_limits_tracks_limited_groups(machine):
    memcg = machine.enable_memcg()
    assert not memcg.has_limits
    memcg.create_group("free")
    assert not memcg.has_limits
    memcg.create_group("capped", limit_pages=10)
    assert memcg.has_limits


# -- limits: targeted reclaim and proportional pressure ----------------------


def test_limit_holds_rss_near_the_cap(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("capped")
    group = memcg.create_group("capped", limit_pages=20)
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 60)
    # The limit is enforced by targeted reclaim at each fault: RSS may
    # not grow past the cap (the 60-page footprint spills to swap).
    assert group.rss_total <= 20
    assert machine.stats.get("memcg.limit_reclaims") > 0
    assert machine.stats.get("memcg.pages_reclaimed") > 0


def test_targeted_reclaim_leaves_co_tenant_alone(machine):
    memcg = machine.enable_memcg()
    capped = machine.create_process("capped")
    quiet = machine.create_process("quiet")
    g_capped = memcg.create_group("capped", limit_pages=15)
    g_quiet = memcg.create_group("quiet")
    memcg.attach(capped, g_capped)
    memcg.attach(quiet, g_quiet)
    map_and_touch(machine, quiet, 0, 30)
    before = g_quiet.rss_total
    map_and_touch(machine, capped, 1000, 50)
    assert g_capped.rss_total <= 15
    # Only the offender's own pages were reclaimed.
    assert g_quiet.rss_total == before


def test_scan_weight_doubles_for_over_limit_groups(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a", limit_pages=5)
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 4)
    pfn = process.page_table.lookup(0).page.pfn
    assert memcg.scan_weight(pfn) == 1  # under limit: vanilla CLOCK
    group.rss_total = 9  # force over-limit (books restored below)
    assert memcg.scan_weight(pfn) == 2
    group.rss_total = 4


# -- the OOM killer ----------------------------------------------------------


@pytest.fixture
def overcommit_machine():
    """So tight that reclaim runs out of swap and the killer must fire."""
    return Machine(
        SimulationConfig(dram_pages=(32,), pm_pages=(48,), swap_pages=16),
        "multiclock",
    )


def drive_until_killed(machine, process, start, pages):
    process.mmap_anon(start, pages)
    for vpage in range(start, start + pages):
        machine.system.touch(process, vpage)


def test_oom_kills_largest_group_and_cotenant_survives(overcommit_machine):
    machine = overcommit_machine
    memcg = machine.enable_memcg()
    tracer = machine.enable_tracing()
    small = machine.create_process("small")
    big = machine.create_process("big")
    g_small = memcg.create_group("small")
    g_big = memcg.create_group("big")
    memcg.attach(small, g_small)
    memcg.attach(big, g_big)
    map_and_touch(machine, small, 0, 12)
    with pytest.raises(ProcessKilledError):
        drive_until_killed(machine, big, 1000, 200)

    # The victim is the hog: its group is dead and fully uncharged.
    assert g_big.killed and not g_small.killed
    assert g_big.rss_total == 0
    assert machine.stats.get("memcg.oom_group_kills") == 1

    # Satellite: the victim's frames went back to the free lists — the
    # machine has room again and the co-tenant keeps running.
    assert sum(n.free_pages for n in machine.system.nodes.values()) > 0
    for vpage in range(12):
        machine.system.touch(small, vpage)
    assert g_small.rss_total > 0

    # The trace names the victim pid.
    from repro.trace import iter_events

    kills = [e for e in iter_events(tracer) if e.name == "oom_kill"]
    assert kills and kills[-1].fields["pid"] == big.pid

    # A killed tenant's next access dies, every time.
    with pytest.raises(ProcessKilledError):
        machine.system.touch(big, 1000)

    # The books survive the kill intact.
    assert check_invariants(machine.system) == []


def test_oom_without_memcg_still_aborts(overcommit_machine):
    from repro.mm.system import OutOfMemoryError

    machine = overcommit_machine
    process = machine.create_process("hog")
    with pytest.raises(OutOfMemoryError):
        drive_until_killed(machine, process, 0, 200)


# -- the memcg-accounting invariant sweep ------------------------------------


def test_clean_armed_machine_passes_invariants(machine):
    memcg = machine.enable_memcg()
    a = machine.create_process("a")
    b = machine.create_process("b")
    memcg.attach(a, memcg.create_group("a", limit_pages=25))
    memcg.attach(b, memcg.create_group("b"))
    map_and_touch(machine, a, 0, 40)
    map_and_touch(machine, b, 1000, 40)
    machine.clock.advance_app(int(1e9))
    machine.drain_daemons()
    assert check_invariants(machine.system) == []


def test_book_drift_caught(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 10)
    node_id = next(iter(group.rss))
    group.rss[node_id] += 1
    group.rss_total += 1
    assert "memcg-accounting" in checks_of(check_invariants(machine.system))


def test_negative_book_caught(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 2)
    node_id = next(iter(group.rss))
    group.rss[node_id] -= 5
    group.rss_total -= 5
    found = checks_of(check_invariants(machine.system))
    assert "memcg-accounting" in found


def test_total_vs_per_node_mismatch_caught(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 4)
    group.rss_total += 3  # per-node books untouched
    assert "memcg-accounting" in checks_of(check_invariants(machine.system))


def test_killed_group_with_residue_caught(machine):
    memcg = machine.enable_memcg()
    process = machine.create_process("a")
    group = memcg.create_group("a")
    memcg.attach(process, group)
    map_and_touch(machine, process, 0, 4)
    group.killed = True  # killed without the uncharge teardown
    assert "memcg-accounting" in checks_of(check_invariants(machine.system))


# -- nop discipline: armed-but-unlimited is bit-identical --------------------


def two_tenant_workload(seed=3):
    return MultiTenantWorkload(
        [
            ZipfWorkload(120, 4000, seed=seed),
            UniformWorkload(100, 3000, seed=seed + 1),
        ]
    )


def test_armed_unlimited_two_tenant_run_bit_identical():
    config = SimulationConfig(dram_pages=(64,), pm_pages=(256,))

    plain = Machine(config, "multiclock")
    result_plain = run_workload(two_tenant_workload(), config, machine=plain)

    armed = Machine(config, "multiclock")
    armed.enable_memcg()  # armed, no limits: books only, no behaviour
    result_armed = run_workload(two_tenant_workload(), config, machine=armed)

    assert result_armed.to_dict() == result_plain.to_dict()
    assert armed.clock.now_ns == plain.clock.now_ns
    assert armed.stats.snapshot() == plain.stats.snapshot()
    # ... and the controller still kept correct books on the side.
    assert check_invariants(armed.system) == []
    memcg = armed.system.memcg
    assert sum(g.rss_total for g in memcg.groups) > 0
