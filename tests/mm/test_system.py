"""Unit tests for the MemorySystem access path."""

import pytest

from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.sim.config import LatencyConfig, SimulationConfig


@pytest.fixture
def system():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "static").system


def test_node_layout(system):
    assert system.nodes[0].tier is MemoryTier.DRAM
    assert system.nodes[1].tier is MemoryTier.PM
    assert len(system.dram_nodes()) == 1
    assert len(system.pm_nodes()) == 1


def test_first_touch_faults_and_maps(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    assert process.page_table.lookup(0) is not None
    assert system.stats.get("faults.minor") == 1
    assert system.stats.get("alloc.pages") == 1


def test_second_touch_no_fault(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    system.touch(process, 0)
    assert system.stats.get("faults.minor") == 1
    assert system.stats.get("accesses.total") == 2


def test_access_sets_pte_bits(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    pte = process.page_table.lookup(0)
    assert pte.accessed
    assert not pte.dirty
    system.touch(process, 0, is_write=True)
    assert pte.dirty
    assert pte.page.test(PageFlags.DIRTY)


def test_access_latency_scales_with_lines(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    before = system.clock.app_ns
    system.touch(process, 0, lines=10)
    delta = system.clock.app_ns - before
    assert delta == 10 * LatencyConfig().dram_read_ns


def test_pm_access_slower_than_dram(system):
    process = system.create_process()
    process.mmap_anon(0, 512)
    # Fill DRAM so later touches land in PM.
    for vpage in range(300):
        system.touch(process, vpage)
    latency = LatencyConfig()
    page = process.page_table.lookup(299).page
    assert system.tier_of(page) is MemoryTier.PM
    before = system.clock.app_ns
    system.touch(process, 299)
    assert system.clock.app_ns - before == latency.pm_read_ns


def test_unmapped_vpage_raises(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    with pytest.raises(LookupError):
        system.touch(process, 99)


def test_new_pages_placed_on_inactive_list(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert page.lru.name == "anon_inactive"


def test_file_pages_go_to_file_lists(system):
    process = system.create_process()
    process.mmap_file(0, 8)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert not page.is_anon
    assert page.lru.name == "file_inactive"


def test_mlocked_region_pages_unevictable(system):
    from repro.mm.address_space import MemoryRegion

    process = system.create_process()
    process.mmap(MemoryRegion(0, 4, mlocked=True))
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert page.test(PageFlags.UNEVICTABLE)
    assert page.lru.name == "unevictable"


def test_supervised_region_marks_accessed_inline(system):
    """Section III-A supervised path: list state advances on access."""
    process = system.create_process()
    process.mmap_anon(0, 8, supervised=True)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert page.test(PageFlags.REFERENCED)
    system.touch(process, 0)
    assert page.lru.name == "anon_active"


def test_unsupervised_region_only_sets_pte_bit(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert page.lru.name == "anon_inactive"
    assert not page.test(PageFlags.REFERENCED)


def test_eviction_and_major_refault(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    system.unmap_and_evict(page)
    assert process.page_table.lookup(0) is None
    assert system.backing.is_swapped(process.pid, 0)
    system.touch(process, 0)
    assert system.stats.get("faults.major") == 1
    assert not system.backing.is_swapped(process.pid, 0)


def test_evict_unevictable_rejected(system):
    from repro.mm.address_space import MemoryRegion

    process = system.create_process()
    process.mmap(MemoryRegion(0, 4, mlocked=True))
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    with pytest.raises(ValueError):
        system.unmap_and_evict(page)


def test_file_eviction_no_swap(system):
    process = system.create_process()
    process.mmap_file(0, 8)
    system.touch(process, 0)
    page = process.page_table.lookup(0).page
    system.unmap_and_evict(page)
    assert system.backing.swapped_pages == 0
    assert system.backing.file_writebacks == 1
    # Refault is a minor fault (re-read, no swap slot).
    system.touch(process, 0)
    assert system.stats.get("faults.major") == 0


def test_hint_fault_charges_and_notifies(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    pte = process.page_table.lookup(0)
    pte.poisoned = True
    before = system.clock.app_ns
    system.touch(process, 0)
    assert not pte.poisoned
    assert system.stats.get("faults.hint") == 1
    assert system.clock.app_ns - before >= LatencyConfig().hint_fault_ns


def test_dram_vs_pm_access_counters(system):
    process = system.create_process()
    process.mmap_anon(0, 8)
    system.touch(process, 0)
    assert system.stats.get("accesses.dram") == 1
    assert system.stats.get("accesses.pm") == 0


def test_attach_policy_twice_rejected(system):
    from repro.policies.static import StaticTieringPolicy

    with pytest.raises(RuntimeError):
        StaticTieringPolicy(system)


def test_used_pages_accounting(system):
    process = system.create_process()
    process.mmap_anon(0, 16)
    for vpage in range(10):
        system.touch(process, vpage)
    assert system.used_pages() == 10


def test_exhaustion_stalls_in_direct_reclaim_not_crash():
    """Filling memory past capacity degrades into direct reclaim (swap),
    never an uncaught MemoryError."""
    machine = Machine(
        SimulationConfig(dram_pages=(16,), pm_pages=(16,), swap_pages=256),
        "static",
    )
    process = machine.system.create_process()
    process.mmap_anon(0, 64)
    for vpage in range(64):
        machine.system.touch(process, vpage)
    assert machine.stats.get("accesses.total") + machine.stats.get("faults.minor") > 0
    assert machine.stats.get("vm.oom_stalls") > 0
    assert machine.stats.get("alloc.direct_reclaim") > 0
    assert machine.stats.get("oom.kills") == 0


def test_oom_killer_reports_node_occupancy():
    """When reclaim cannot free anything (swap full), the OOM error names
    the per-node occupancy instead of a bare MemoryError."""
    from repro.mm.system import OutOfMemoryError

    machine = Machine(
        SimulationConfig(dram_pages=(8,), pm_pages=(8,), swap_pages=4),
        "static",
    )
    process = machine.system.create_process()
    process.mmap_anon(0, 128)
    with pytest.raises(OutOfMemoryError) as excinfo:
        for vpage in range(128):
            machine.system.touch(process, vpage)
    message = str(excinfo.value)
    assert "node0/DRAM" in message
    assert "node1/PM" in message
    assert machine.stats.get("oom.kills") == 1
