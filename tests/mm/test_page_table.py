"""Unit tests for page tables, PTEs and reverse mappings."""

import pytest

from repro.mm.page import Page
from repro.mm.page_table import PageTable


def test_map_and_lookup():
    table = PageTable(1)
    page = Page(0)
    pte = table.map(5, page)
    assert table.lookup(5) is pte
    assert 5 in table
    assert len(table) == 1


def test_lookup_missing_returns_none():
    table = PageTable(1)
    assert table.lookup(99) is None
    assert 99 not in table


def test_map_registers_rmap():
    table = PageTable(1)
    page = Page(0)
    pte = table.map(5, page)
    assert pte in page.rmap
    assert page.mapped


def test_double_map_rejected():
    table = PageTable(1)
    table.map(5, Page(0))
    with pytest.raises(ValueError):
        table.map(5, Page(0))


def test_unmap_detaches_rmap():
    table = PageTable(1)
    page = Page(0)
    table.map(5, page)
    pte = table.unmap(5)
    assert pte.page is page
    assert pte not in page.rmap
    assert not page.mapped
    assert table.lookup(5) is None


def test_unmap_missing_raises():
    table = PageTable(1)
    with pytest.raises(KeyError):
        table.unmap(5)


def test_touch_sets_accessed_and_dirty():
    pte = PageTable(1).map(0, Page(0))
    pte.touch(is_write=False)
    assert pte.accessed and not pte.dirty
    pte.touch(is_write=True)
    assert pte.dirty


def test_shared_page_multiple_tables():
    page = Page(0, is_anon=False)
    t1, t2 = PageTable(1), PageTable(2)
    t1.map(0, page)
    t2.map(7, page)
    assert len(page.rmap) == 2
    t1.unmap(0)
    assert len(page.rmap) == 1


def test_entries_listing():
    table = PageTable(1)
    table.map(1, Page(0))
    table.map(2, Page(0))
    assert {pte.vpage for pte in table.entries()} == {1, 2}
