"""Unit tests for first-touch allocation with tier fallback."""

import pytest

from repro.mm.alloc import PageAllocator
from repro.mm.hardware import MemoryTier
from repro.mm.numa import NumaNode


def make_nodes(dram=16, pm=64):
    total = dram + pm
    return [
        NumaNode.create(0, MemoryTier.DRAM, dram, total),
        NumaNode.create(1, MemoryTier.PM, pm, total),
    ]


def test_allocator_needs_nodes():
    with pytest.raises(ValueError):
        PageAllocator([])


def test_fallback_order_dram_first():
    nodes = make_nodes()
    allocator = PageAllocator([nodes[1], nodes[0]])  # shuffled input
    order = allocator.fallback_order
    assert order[0].tier is MemoryTier.DRAM
    assert order[1].tier is MemoryTier.PM


def test_pages_born_in_dram():
    allocator = PageAllocator(make_nodes())
    result = allocator.allocate(is_anon=True)
    assert result.node.tier is MemoryTier.DRAM
    assert not result.fell_back


def test_fallback_to_pm_when_dram_exhausted():
    nodes = make_nodes(dram=16, pm=64)
    allocator = PageAllocator(nodes)
    results = [allocator.allocate(is_anon=True) for __ in range(30)]
    tiers = [r.node.tier for r in results]
    assert MemoryTier.DRAM in tiers
    assert MemoryTier.PM in tiers
    # Once fallen back, the fell_back flag is reported.
    assert any(r.fell_back for r in results)


def test_fallback_respects_min_watermark_headroom():
    """DRAM stops taking ordinary allocations at the min watermark."""
    nodes = make_nodes(dram=100, pm=400)
    allocator = PageAllocator(nodes)
    while True:
        result = allocator.allocate(is_anon=True)
        if result.fell_back:
            break
    dram = nodes[0]
    assert dram.free_pages <= dram.watermarks.min_pages


def test_pressure_signal_reported():
    nodes = make_nodes(dram=100, pm=400)
    allocator = PageAllocator(nodes)
    seen_pressure = False
    for __ in range(150):
        result = allocator.allocate(is_anon=True)
        if 0 in result.pressured_nodes:
            seen_pressure = True
            break
    assert seen_pressure


def test_all_full_raises_memory_error():
    nodes = make_nodes(dram=4, pm=4)
    allocator = PageAllocator(nodes)
    for __ in range(8):
        allocator.allocate(is_anon=True)
    with pytest.raises(MemoryError):
        allocator.allocate(is_anon=True)


def test_reserve_walk_uses_pages_below_min():
    """When every node is into its reserve, allocation still succeeds
    until frames are truly gone (atomic-allocation behaviour)."""
    nodes = make_nodes(dram=4, pm=4)
    allocator = PageAllocator(nodes)
    got = sum(1 for __ in range(8) if allocator.allocate(is_anon=True))
    assert got == 8


def test_anon_flag_propagates():
    allocator = PageAllocator(make_nodes())
    assert allocator.allocate(is_anon=True).page.is_anon
    assert not allocator.allocate(is_anon=False).page.is_anon


def test_reserve_walk_takes_highest_tier_first():
    """Once every node is below its min watermark, remaining frames are
    still handed out in fallback order — DRAM reserve before PM reserve."""
    nodes = make_nodes(dram=4, pm=4)
    allocator = PageAllocator(nodes)
    while (nodes[0].free_pages > nodes[0].watermarks.min_pages
           or nodes[1].free_pages > nodes[1].watermarks.min_pages):
        allocator.allocate(is_anon=True)
    assert nodes[0].free_pages > 0  # DRAM reserve not yet consumed
    result = allocator.allocate(is_anon=True)
    assert result.node.tier is MemoryTier.DRAM
    assert not result.fell_back


def test_reserve_walk_stops_only_when_frames_are_gone():
    nodes = make_nodes(dram=4, pm=4)
    allocator = PageAllocator(nodes)
    for __ in range(8):
        allocator.allocate(is_anon=True)
    assert nodes[0].free_pages == 0
    assert nodes[1].free_pages == 0
    with pytest.raises(MemoryError):
        allocator.allocate(is_anon=True)


def test_occupancy_reports_every_node():
    nodes = make_nodes(dram=16, pm=64)
    allocator = PageAllocator(nodes)
    for __ in range(3):
        allocator.allocate(is_anon=True)
    report = allocator.occupancy()
    assert "node0/DRAM 3/16 used" in report
    assert "node1/PM 0/64 used" in report


def test_occupancy_reports_offline_frames():
    nodes = make_nodes(dram=16, pm=64)
    allocator = PageAllocator(nodes)
    nodes[1].take_offline(10)
    assert "(10 offline)" in allocator.occupancy()


def test_offline_frames_shrink_the_reserve():
    nodes = make_nodes(dram=4, pm=4)
    allocator = PageAllocator(nodes)
    nodes[1].take_offline(2)
    got = 0
    while True:
        try:
            allocator.allocate(is_anon=True)
            got += 1
        except MemoryError:
            break
    assert got == 6  # 8 frames minus 2 offline
