"""Unit tests for the intrusive LRU lists and the per-node LruVec."""

import pytest

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind, LruList, LruVec
from repro.mm.page import Page


def make_pages(n, node_id=0):
    return [Page(node_id) for __ in range(n)]


def test_empty_list():
    lst = LruList(ListKind.INACTIVE, True)
    assert len(lst) == 0
    assert not lst
    assert lst.head is None
    assert lst.tail is None
    assert lst.pop_tail() is None


def test_add_head_ordering():
    lst = LruList(ListKind.INACTIVE, True)
    a, b, c = make_pages(3)
    for page in (a, b, c):
        lst.add_head(page)
    assert lst.head is c
    assert lst.tail is a
    assert list(lst) == [c, b, a]


def test_add_tail_ordering():
    lst = LruList(ListKind.INACTIVE, True)
    a, b = make_pages(2)
    lst.add_tail(a)
    lst.add_tail(b)
    assert lst.tail is b
    assert list(lst) == [a, b]


def test_add_sets_lru_flag_and_backpointer():
    lst = LruList(ListKind.ACTIVE, False)
    (page,) = make_pages(1)
    lst.add_head(page)
    assert page.lru is lst
    assert page.test(PageFlags.LRU)


def test_remove_middle():
    lst = LruList(ListKind.INACTIVE, True)
    a, b, c = make_pages(3)
    for page in (a, b, c):
        lst.add_head(page)
    lst.remove(b)
    assert list(lst) == [c, a]
    assert b.lru is None
    assert not b.test(PageFlags.LRU)
    assert b.lru_prev is None and b.lru_next is None


def test_remove_head_and_tail():
    lst = LruList(ListKind.INACTIVE, True)
    a, b = make_pages(2)
    lst.add_head(a)
    lst.add_head(b)
    lst.remove(b)  # head
    assert lst.head is a and lst.tail is a
    lst.remove(a)  # last element
    assert lst.head is None and lst.tail is None and len(lst) == 0


def test_remove_from_wrong_list_raises():
    lst1 = LruList(ListKind.INACTIVE, True)
    lst2 = LruList(ListKind.ACTIVE, True)
    (page,) = make_pages(1)
    lst1.add_head(page)
    with pytest.raises(ValueError):
        lst2.remove(page)


def test_double_add_raises():
    lst = LruList(ListKind.INACTIVE, True)
    (page,) = make_pages(1)
    lst.add_head(page)
    with pytest.raises(ValueError):
        lst.add_head(page)


def test_pop_tail_returns_lru_end():
    lst = LruList(ListKind.INACTIVE, True)
    a, b = make_pages(2)
    lst.add_head(a)
    lst.add_head(b)
    assert lst.pop_tail() is a
    assert lst.pop_tail() is b
    assert lst.pop_tail() is None


def test_rotate_to_head():
    lst = LruList(ListKind.INACTIVE, True)
    a, b, c = make_pages(3)
    for page in (a, b, c):
        lst.add_head(page)
    lst.rotate_to_head(a)
    assert list(lst) == [a, c, b]
    assert lst.tail is b


def test_iter_from_tail_order():
    lst = LruList(ListKind.INACTIVE, True)
    a, b, c = make_pages(3)
    for page in (a, b, c):
        lst.add_head(page)
    assert list(lst.iter_from_tail()) == [a, b, c]


def test_iter_from_tail_safe_against_removal_of_yielded():
    lst = LruList(ListKind.INACTIVE, True)
    pages = make_pages(5)
    for page in pages:
        lst.add_head(page)
    seen = []
    for page in lst.iter_from_tail():
        seen.append(page)
        lst.remove(page)
    assert seen == pages
    assert len(lst) == 0


def test_iter_from_tail_with_rotation_is_circular():
    """Rotating the yielded page to the head turns tail iteration into a
    circular CLOCK hand: within one list-length of steps every page is
    visited once, and the walk then wraps around instead of ending.
    Callers must therefore bound such scans with a budget."""
    lst = LruList(ListKind.INACTIVE, True)
    pages = make_pages(4)
    for page in pages:
        lst.add_head(page)
    seen = []
    for page in lst.iter_from_tail():
        if len(seen) >= 2 * len(pages):
            break  # the budget every production scan applies
        seen.append(page)
        lst.rotate_to_head(page)
    assert set(seen[:4]) == set(pages)  # one full revolution covers all
    assert seen[4:] == seen[:4]  # and then the hand wraps around


def test_list_name():
    assert LruList(ListKind.INACTIVE, True).name == "anon_inactive"
    assert LruList(ListKind.PROMOTE, False).name == "file_promote"
    assert LruList(ListKind.UNEVICTABLE, None).name == "unevictable"


def test_lruvec_has_seven_lists():
    vec = LruVec()
    names = {lst.name for lst in vec.all_lists()}
    assert names == {
        "anon_inactive", "anon_active", "anon_promote",
        "file_inactive", "file_active", "file_promote",
        "unevictable",
    }


def test_lruvec_list_of_respects_page_family():
    vec = LruVec()
    anon = Page(0, is_anon=True)
    file_page = Page(0, is_anon=False)
    assert vec.list_of(anon, ListKind.ACTIVE).name == "anon_active"
    assert vec.list_of(file_page, ListKind.ACTIVE).name == "file_active"


def test_lruvec_counts_and_evictable():
    vec = LruVec()
    pages = make_pages(3)
    vec.list_for(ListKind.INACTIVE, True).add_head(pages[0])
    vec.list_for(ListKind.ACTIVE, True).add_head(pages[1])
    vec.list_for(ListKind.UNEVICTABLE).add_head(pages[2])
    assert vec.counts()["anon_inactive"] == 1
    assert vec.evictable_pages() == 2


def test_active_inactive_ratio():
    vec = LruVec()
    for __ in range(4):
        vec.list_for(ListKind.ACTIVE, True).add_head(Page(0))
    vec.list_for(ListKind.INACTIVE, True).add_head(Page(0))
    assert vec.active_inactive_ratio(True) == pytest.approx(4.0)


def test_active_inactive_ratio_empty_inactive():
    vec = LruVec()
    assert vec.active_inactive_ratio(True) == 0.0
    vec.list_for(ListKind.ACTIVE, True).add_head(Page(0))
    assert vec.active_inactive_ratio(True) == float("inf")
