"""Unit tests for the page migration engine."""

from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel, MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.migrate import MAX_MIGRATE_ATTEMPTS, MigrationEngine, MigrationOutcome
from repro.mm.numa import NumaNode
from repro.sim.config import LatencyConfig
from repro.sim.stats import StatsBook
from repro.sim.vclock import VirtualClock


def make_engine(dram=8, pm=32):
    total = dram + pm
    nodes = {
        0: NumaNode.create(0, MemoryTier.DRAM, dram, total),
        1: NumaNode.create(1, MemoryTier.PM, pm, total),
    }
    clock = VirtualClock()
    stats = StatsBook()
    engine = MigrationEngine(nodes, HardwareModel(LatencyConfig()), clock, stats)
    return engine, nodes, clock, stats


def test_promotion_success():
    engine, nodes, clock, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    outcome = engine.migrate(page, nodes[0])
    assert outcome is MigrationOutcome.MIGRATED
    assert outcome.ok
    assert page.node_id == 0
    assert nodes[0].used_pages == 1
    assert nodes[1].used_pages == 0
    assert stats.get("migrate.promotions") == 1


def test_demotion_counted_separately():
    engine, nodes, __, stats = make_engine()
    page = nodes[0].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[1]).ok
    assert stats.get("migrate.demotions") == 1
    assert stats.get("migrate.promotions") == 0


def test_migration_charges_copy_cost():
    engine, nodes, clock, __ = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    engine.migrate(page, nodes[0])
    assert clock.system_ns == LatencyConfig().page_copy_ns


def test_locked_page_refused():
    engine, nodes, clock, __ = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    page.set(PageFlags.LOCKED)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.PAGE_LOCKED
    assert page.node_id == 1
    assert clock.system_ns == 0


def test_unevictable_page_refused():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    page.set(PageFlags.UNEVICTABLE)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.PAGE_UNEVICTABLE


def test_full_destination_refused():
    engine, nodes, __, __stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.DEST_FULL
    assert page.node_id == 1


def test_same_node_is_noop():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[1]) is MigrationOutcome.SAME_NODE


def test_migration_detaches_from_lru():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    nodes[1].lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    assert engine.migrate(page, nodes[0]).ok
    assert page.lru is None


def test_promotion_records_timestamp_and_callback():
    engine, nodes, clock, __ = make_engine()
    clock.advance_app(12345)
    promoted = []
    engine.on_promote = promoted.append
    page = nodes[1].allocate_page(is_anon=True)
    engine.migrate(page, nodes[0])
    assert page.last_promoted_ns >= 12345
    assert promoted == [page]


def test_failed_migration_leaves_page_on_list():
    engine, nodes, __, __stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    lst = nodes[1].lruvec.list_of(page, ListKind.INACTIVE)
    lst.add_head(page)
    engine.migrate(page, nodes[0])
    assert page.lru is lst


def test_copy_failure_charges_cost_but_leaves_page():
    engine, nodes, clock, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    engine.copy_fault_hook = lambda p, d: True
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.COPY_FAILED
    assert page.node_id == 1
    assert clock.system_ns == LatencyConfig().page_copy_ns
    assert stats.get("migrate.failed_copy") == 1


def test_retry_heals_transient_copy_failure():
    engine, nodes, __, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    fails = iter([True, True, False])
    engine.copy_fault_hook = lambda p, d: next(fails)
    assert engine.migrate_with_retry(page, nodes[0]).ok
    assert page.node_id == 0
    assert stats.get("migrate.attempts") == 3
    assert stats.get("migrate.retries") == 2
    assert stats.get("migrate.retry_succeeded") == 1
    assert stats.get("migrate.retries_exhausted") == 0


def test_retry_backoff_is_exponential_virtual_time():
    engine, nodes, clock, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    fails = iter([True, True, False])
    engine.copy_fault_hook = lambda p, d: next(fails)
    engine.migrate_with_retry(page, nodes[0])
    latency = LatencyConfig()
    # Three copy attempts charged, plus backoffs of base and 2*base.
    expected = 3 * latency.page_copy_ns + 3 * latency.migrate_backoff_ns
    assert clock.system_ns == expected


def test_retry_gives_up_after_kernel_bound():
    engine, nodes, __, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    engine.copy_fault_hook = lambda p, d: True
    outcome = engine.migrate_with_retry(page, nodes[0])
    assert outcome is MigrationOutcome.COPY_FAILED
    assert page.node_id == 1
    assert stats.get("migrate.attempts") == MAX_MIGRATE_ATTEMPTS
    assert stats.get("migrate.retries") == MAX_MIGRATE_ATTEMPTS - 1
    assert stats.get("migrate.retries_exhausted") == 1
    assert stats.get("migrate.retry_succeeded") == 0


def test_retry_without_injector_is_single_attempt():
    """Faults-off bit-identity: no hook means no retry loop, no backoff."""
    engine, nodes, clock, stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate_with_retry(page, nodes[0]) is MigrationOutcome.DEST_FULL
    assert stats.get("migrate.attempts") == 1
    assert stats.get("migrate.retries") == 0
    assert clock.system_ns == 0


def test_dest_full_retries_capped_by_congestion_budget():
    engine, nodes, clock, stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    engine.copy_fault_hook = lambda p, d: False  # armed but never fires
    assert engine.migrate_with_retry(page, nodes[0]) is MigrationOutcome.DEST_FULL
    # Congestion budget (3) is tighter than the 10-attempt transient bound.
    assert stats.get("migrate.attempts") == 4
    assert stats.get("migrate.retries") == 3
    assert stats.get("migrate.retries_exhausted") == 1
    assert clock.system_ns > 0  # congestion backoff was charged


def test_permanent_failure_never_retried():
    engine, nodes, __, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    page.set(PageFlags.LOCKED)
    engine.copy_fault_hook = lambda p, d: True
    assert engine.migrate_with_retry(page, nodes[0]) is MigrationOutcome.PAGE_LOCKED
    assert stats.get("migrate.attempts") == 1
    assert stats.get("migrate.retries") == 0


def test_transient_classification():
    assert MigrationOutcome.COPY_FAILED.transient
    assert MigrationOutcome.DEST_FULL.transient
    assert not MigrationOutcome.PAGE_LOCKED.transient
    assert not MigrationOutcome.PAGE_UNEVICTABLE.transient
    assert not MigrationOutcome.SAME_NODE.transient
    assert not MigrationOutcome.MIGRATED.transient
