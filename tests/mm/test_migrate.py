"""Unit tests for the page migration engine."""

from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel, MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.migrate import MigrationEngine, MigrationOutcome
from repro.mm.numa import NumaNode
from repro.sim.config import LatencyConfig
from repro.sim.stats import StatsBook
from repro.sim.vclock import VirtualClock


def make_engine(dram=8, pm=32):
    total = dram + pm
    nodes = {
        0: NumaNode.create(0, MemoryTier.DRAM, dram, total),
        1: NumaNode.create(1, MemoryTier.PM, pm, total),
    }
    clock = VirtualClock()
    stats = StatsBook()
    engine = MigrationEngine(nodes, HardwareModel(LatencyConfig()), clock, stats)
    return engine, nodes, clock, stats


def test_promotion_success():
    engine, nodes, clock, stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    outcome = engine.migrate(page, nodes[0])
    assert outcome is MigrationOutcome.MIGRATED
    assert outcome.ok
    assert page.node_id == 0
    assert nodes[0].used_pages == 1
    assert nodes[1].used_pages == 0
    assert stats.get("migrate.promotions") == 1


def test_demotion_counted_separately():
    engine, nodes, __, stats = make_engine()
    page = nodes[0].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[1]).ok
    assert stats.get("migrate.demotions") == 1
    assert stats.get("migrate.promotions") == 0


def test_migration_charges_copy_cost():
    engine, nodes, clock, __ = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    engine.migrate(page, nodes[0])
    assert clock.system_ns == LatencyConfig().page_copy_ns


def test_locked_page_refused():
    engine, nodes, clock, __ = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    page.set(PageFlags.LOCKED)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.PAGE_LOCKED
    assert page.node_id == 1
    assert clock.system_ns == 0


def test_unevictable_page_refused():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    page.set(PageFlags.UNEVICTABLE)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.PAGE_UNEVICTABLE


def test_full_destination_refused():
    engine, nodes, __, __stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[0]) is MigrationOutcome.DEST_FULL
    assert page.node_id == 1


def test_same_node_is_noop():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    assert engine.migrate(page, nodes[1]) is MigrationOutcome.SAME_NODE


def test_migration_detaches_from_lru():
    engine, nodes, __, __stats = make_engine()
    page = nodes[1].allocate_page(is_anon=True)
    nodes[1].lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    assert engine.migrate(page, nodes[0]).ok
    assert page.lru is None


def test_promotion_records_timestamp_and_callback():
    engine, nodes, clock, __ = make_engine()
    clock.advance_app(12345)
    promoted = []
    engine.on_promote = promoted.append
    page = nodes[1].allocate_page(is_anon=True)
    engine.migrate(page, nodes[0])
    assert page.last_promoted_ns >= 12345
    assert promoted == [page]


def test_failed_migration_leaves_page_on_list():
    engine, nodes, __, __stats = make_engine(dram=1)
    nodes[0].allocate_page(is_anon=True)
    page = nodes[1].allocate_page(is_anon=True)
    lst = nodes[1].lruvec.list_of(page, ListKind.INACTIVE)
    lst.add_head(page)
    engine.migrate(page, nodes[0])
    assert page.lru is lst
