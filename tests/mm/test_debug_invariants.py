"""Unit tests for the CONFIG_DEBUG_VM-style invariant checker.

A clean machine must pass; each planted corruption must be caught by the
check named after its kernel analogue.
"""

import pytest

from repro.machine import Machine
from repro.mm.debug import InvariantChecker, InvariantError, check_invariants
from repro.mm.flags import PageFlags
from repro.sim.config import SimulationConfig


@pytest.fixture
def machine():
    m = Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "multiclock")
    process = m.create_process()
    process.mmap_anon(0, 48)
    for vpage in range(48):
        m.system.touch(process, vpage)
    return m


def checks_of(violations):
    return {v.check for v in violations}


def first_listed_page(machine, node_id=0):
    for lst in machine.system.nodes[node_id].lruvec.all_lists():
        for page in lst:
            return page, lst
    raise AssertionError("no resident pages")


def test_clean_machine_has_no_violations(machine):
    assert check_invariants(machine.system) == []


def test_clean_machine_stays_clean_after_daemon_work(machine):
    machine.clock.advance_app(int(2e9))
    machine.drain_daemons()
    assert check_invariants(machine.system) == []


def test_missing_lru_flag_caught(machine):
    page, __ = first_listed_page(machine)
    page.clear(PageFlags.LRU)
    assert "list-structure" in checks_of(check_invariants(machine.system))


def test_broken_back_link_caught(machine):
    lst = next(
        lst for node in machine.system.nodes.values()
        for lst in node.lruvec.all_lists() if len(lst) >= 2
    )
    lst.head.lru_next.lru_prev = None
    assert "list-structure" in checks_of(check_invariants(machine.system))


def test_count_drift_caught(machine):
    __, lst = first_listed_page(machine)
    lst._count += 1
    assert "list-structure" in checks_of(check_invariants(machine.system))


def test_node_accounting_drift_caught(machine):
    machine.system.nodes[0]._used_pages += 1
    violations = check_invariants(machine.system)
    assert "frame-accounting" in checks_of(violations)


def test_stale_rmap_entry_caught(machine):
    process = next(iter(machine.system.processes.values()))
    pte = process.page_table.lookup(0)
    pte.page.rmap.remove(pte)
    assert "rmap" in checks_of(check_invariants(machine.system))


def test_swap_accounting_drift_caught(machine):
    machine.system.backing.swap_outs += 1
    assert "swap-accounting" in checks_of(check_invariants(machine.system))


def test_checker_counts_sweeps_and_violations(machine):
    checker = InvariantChecker(machine.system)
    assert checker.check() == []
    assert machine.stats.get("debug_vm.checks") == 1
    assert machine.stats.get("debug_vm.violations") == 0
    page, __ = first_listed_page(machine)
    page.clear(PageFlags.LRU)
    found = checker.check()
    assert found
    assert machine.stats.get("debug_vm.checks") == 2
    assert machine.stats.get("debug_vm.violations") == len(found)
    assert checker.last_violations == found


def test_strict_mode_panics_like_vm_bug_on(machine):
    checker = InvariantChecker(machine.system, strict=True)
    checker.check()  # clean sweep does not raise
    page, __ = first_listed_page(machine)
    page.clear(PageFlags.LRU)
    with pytest.raises(InvariantError) as excinfo:
        checker.check()
    assert excinfo.value.violations


def test_counter_regression_caught(machine):
    checker = InvariantChecker(machine.system)
    counter = machine.stats.counter("test.monotone")
    counter.n = 5
    assert checker.check() == []
    counter.n = 3
    violations = checker.check()
    assert "counter-monotone" in checks_of(violations)


def test_periodic_daemon_registration(machine):
    checker = machine.install_invariant_checker(0.001)
    machine.clock.advance_app(int(0.01 * 1e9))
    machine.drain_daemons()
    assert machine.stats.get("debug_vm.checks") >= 1
    assert machine.stats.get("debug_vm.violations") == 0
    assert checker.last_violations == []
