"""Unit tests for NUMA node frame accounting."""

import pytest

from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.watermarks import PressureLevel


def make_node(capacity=16, tier=MemoryTier.DRAM):
    return NumaNode.create(0, tier, capacity, total_pages=capacity * 4)


def test_pm_tag():
    assert NumaNode.create(1, MemoryTier.PM, 100, 400).is_pm
    assert not make_node().is_pm


def test_positive_capacity_required():
    with pytest.raises(ValueError):
        NumaNode.create(0, MemoryTier.DRAM, 0, 100)


def test_allocate_until_full():
    node = make_node(capacity=4)
    pages = [node.allocate_page(is_anon=True) for __ in range(4)]
    assert node.free_pages == 0
    assert not node.can_allocate()
    with pytest.raises(MemoryError):
        node.allocate_page(is_anon=True)
    assert all(page.node_id == 0 for page in pages)


def test_release_frame_returns_capacity():
    node = make_node(capacity=2)
    page = node.allocate_page(is_anon=True)
    node.release_frame(page)
    assert node.free_pages == 2


def test_release_checks_node_identity():
    node_a = make_node()
    node_b = NumaNode.create(1, MemoryTier.PM, 16, 64)
    page = node_a.allocate_page(is_anon=True)
    with pytest.raises(ValueError):
        node_b.release_frame(page)


def test_release_requires_off_lru():
    node = make_node()
    page = node.allocate_page(is_anon=True)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    with pytest.raises(ValueError):
        node.release_frame(page)


def test_adopt_page_reassigns_node():
    source = make_node()
    dest = NumaNode.create(1, MemoryTier.PM, 16, 64)
    page = source.allocate_page(is_anon=True)
    source.release_frame(page)
    dest.adopt_page(page)
    assert page.node_id == 1
    assert dest.used_pages == 1


def test_adopt_when_full_raises():
    source = make_node()
    dest = NumaNode.create(1, MemoryTier.PM, 1, 64)
    dest.allocate_page(is_anon=True)
    page = source.allocate_page(is_anon=True)
    source.release_frame(page)
    with pytest.raises(MemoryError):
        dest.adopt_page(page)


def test_pressure_tracks_free_pages():
    node = make_node(capacity=100)
    assert node.pressure() is PressureLevel.NONE
    while node.free_pages > node.watermarks.min_pages - 1:
        node.allocate_page(is_anon=True)
    assert node.pressure() is PressureLevel.MIN


def test_underflow_detected():
    node = make_node()
    page = node.allocate_page(is_anon=True)
    node.release_frame(page)
    page.node_id = node.node_id
    with pytest.raises(RuntimeError):
        node.release_frame(page)
