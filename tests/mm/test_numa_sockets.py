"""Unit tests for multi-socket NUMA topology."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import LatencyConfig, SimulationConfig

DUAL = SimulationConfig(
    dram_pages=(64, 64),
    pm_pages=(256, 256),
    sockets=2,
)


def test_nodes_assigned_round_robin():
    machine = Machine(DUAL, "static")
    sockets = {nid: node.socket for nid, node in machine.system.nodes.items()}
    assert sockets == {0: 0, 1: 1, 2: 0, 3: 1}


def test_socket_count_validation():
    with pytest.raises(ValueError):
        SimulationConfig(sockets=0).validated()
    with pytest.raises(ValueError):
        SimulationConfig(
            latency=LatencyConfig(remote_socket_multiplier=0.5)
        ).validated()


def test_home_socket_validation():
    machine = Machine(DUAL, "static")
    with pytest.raises(ValueError):
        machine.create_process(home_socket=5)


def test_first_touch_prefers_local_socket():
    machine = Machine(DUAL, "static")
    p0 = machine.create_process(home_socket=0)
    p1 = machine.create_process(home_socket=1)
    p0.mmap_anon(0, 8)
    p1.mmap_anon(0, 8)
    machine.touch(p0, 0)
    machine.touch(p1, 0)
    node_of = lambda proc: machine.system.nodes[  # noqa: E731
        proc.page_table.lookup(0).page.node_id
    ]
    assert node_of(p0).socket == 0
    assert node_of(p1).socket == 1
    assert node_of(p0).tier is MemoryTier.DRAM
    assert node_of(p1).tier is MemoryTier.DRAM


def test_local_fallback_crosses_to_pm_before_remote_dram_is_not_assumed():
    """Fallback order is tier-major: remote DRAM still beats local PM
    (DRAM tier = all DRAM nodes, Section IV)."""
    machine = Machine(DUAL, "static")
    p0 = machine.create_process(home_socket=0)
    p0.mmap_anon(0, 512)
    tiers = []
    for vpage in range(130):  # beyond one socket's DRAM (64)
        machine.touch(p0, vpage)
        node = machine.system.nodes[p0.page_table.lookup(vpage).page.node_id]
        tiers.append(node.tier)
    assert tiers.count(MemoryTier.DRAM) > 64  # spilled into remote DRAM


def test_remote_access_pays_multiplier():
    machine = Machine(DUAL, "static")
    p0 = machine.create_process(home_socket=0)
    p0.mmap_anon(0, 8)
    machine.touch(p0, 0)
    page = p0.page_table.lookup(0).page
    latency = LatencyConfig()
    # Local read.
    before = machine.clock.app_ns
    machine.touch(p0, 0)
    assert machine.clock.app_ns - before == latency.dram_read_ns
    # Re-home the page to the remote socket's DRAM node and re-touch.
    remote = machine.system.nodes[1]
    page.lru.remove(page)
    machine.system.nodes[0].release_frame(page)
    remote.adopt_page(page)
    remote.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    before = machine.clock.app_ns
    machine.touch(p0, 0)
    expected = int(latency.dram_read_ns * latency.remote_socket_multiplier)
    assert machine.clock.app_ns - before == expected
    assert machine.stats.get("accesses.remote") == 1


def test_single_socket_never_counts_remote():
    machine = Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "static")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for vpage in range(50):
        machine.touch(process, vpage)
    assert machine.stats.get("accesses.remote") == 0


def test_multiclock_runs_on_dual_socket():
    """The per-node daemon design scales to four nodes transparently."""
    machine = Machine(DUAL, "multiclock")
    names = {d.name for d in machine.scheduler.daemons}
    assert names == {
        "kpromoted/0", "kpromoted/1", "kpromoted/2", "kpromoted/3",
        "kswapd/0", "kswapd/1", "kswapd/2", "kswapd/3",
    }
    process = machine.create_process(home_socket=1)
    process.mmap_anon(0, 256)
    for round_ in range(3):
        for vpage in range(200):
            machine.touch(process, vpage)
    assert machine.stats.get("accesses.total") == 600
