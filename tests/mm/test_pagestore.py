"""PageStore pfn allocation and the vectorized driver's bit-identity.

Two guarantees of the struct-of-arrays refactor are pinned here.  First,
pfns are allocated densely *per machine*: the old module-level counter
made a machine's pfn sequence depend on how many machines the process
had built earlier, which broke pfn-indexed columns and reproducibility.
Second, the vectorized column-sweep driver (``touch_batch_array``) is
bit-identical to the recorded per-access baseline for every policy, with
metrics off and armed — the gate that lets the hot loops be rewritten as
numpy sweeps at all.
"""

import json
from pathlib import Path

import pytest

from repro.machine import Machine
from repro.mm.page import Page
from repro.mm.pagestore import PageStore, default_store
from repro.run import run_numeric_stream
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

BASELINE = Path(__file__).parent.parent / "data" / "baseline_runresults.json"
RECORDED = json.loads(BASELINE.read_text())


def small_config():
    return SimulationConfig(
        dram_pages=(64,),
        pm_pages=(256,),
        daemons=DaemonConfig(
            kpromoted_interval_s=2e-4, kswapd_interval_s=1e-4
        ),
        seed=3,
    )


# -- per-machine pfn allocation ---------------------------------------------


def test_each_machine_gets_its_own_dense_pfn_sequence():
    """Two machines in one process must not share a pfn counter: the
    second machine's pages start at pfn 0 in its own store."""
    first = Machine(small_config(), "static")
    p1 = first.create_process()
    p1.mmap_anon(0, 32)
    for vpage in range(32):
        first.touch(p1, vpage)

    second = Machine(small_config(), "static")
    p2 = second.create_process()
    p2.mmap_anon(0, 8)
    for vpage in range(8):
        second.touch(p2, vpage)

    store = second.system.pagestore
    assert store is not first.system.pagestore
    assert [page.pfn for page in store.pages] == list(range(len(store)))
    assert len(store) == 8
    # And the first machine's store was not perturbed by the second.
    assert [page.pfn for page in first.system.pagestore.pages] == \
        list(range(32))


def test_machine_runs_fingerprint_identically_regardless_of_prior_machines():
    """Building machines earlier in the process must not shift a later
    machine's behaviour (the regression the module-level counter caused)."""

    def fingerprint():
        machine = Machine(small_config(), "multiclock")
        process = machine.create_process()
        process.mmap_anon(0, 48)
        for vpage in [v % 48 for v in range(0, 400, 7)]:
            machine.touch(process, vpage, is_write=vpage % 3 == 0)
        return (
            dict(sorted(machine.stats.snapshot().items())),
            machine.clock.now_ns,
            [page.pfn for page in machine.system.pagestore.pages],
        )

    first = fingerprint()
    # Interleave unrelated allocation: another machine and bare pages on
    # the default store.
    other = Machine(small_config(), "nimble")
    op = other.create_process()
    op.mmap_anon(0, 16)
    for vpage in range(16):
        other.touch(op, vpage)
    Page(0)  # default-store page
    assert fingerprint() == first


def test_bare_pages_live_on_the_default_store():
    page = Page(0)
    assert page._store is default_store()
    assert page is default_store().page_at(page.pfn)


def test_store_grows_past_initial_capacity():
    store = PageStore(capacity=16)
    pages = [Page(0, store=store) for _ in range(40)]
    assert [p.pfn for p in pages] == list(range(40))
    assert store.page_at(39) is pages[39]
    assert int(store.node[39]) == 0 and int(store.last_promoted[39]) == -1


# -- vectorized driver bit-identity -----------------------------------------


def baseline_config():
    return SimulationConfig(
        dram_pages=(512,),
        pm_pages=(4096,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )


def array_fingerprint(policy, *, metrics=False):
    config = baseline_config()
    machine = Machine(config, policy)
    if metrics:
        machine.enable_metrics(sample_interval_s=0.0005)
    workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
    stream = list(workload.numeric_batches())
    result = run_numeric_stream(
        workload, config, stream, policy, machine=machine
    )
    return {
        "operations": result.operations,
        "accesses": result.accesses,
        "elapsed_ns": result.elapsed_ns,
        "app_ns": result.app_ns,
        "system_ns": result.system_ns,
        "ops_fallback": result.ops_fallback,
        "counters": dict(sorted(result.counters.items())),
    }


@pytest.mark.parametrize("policy", sorted(RECORDED))
def test_array_driver_matches_the_recorded_baseline(policy):
    assert array_fingerprint(policy) == RECORDED[policy]


@pytest.mark.parametrize("policy", sorted(RECORDED))
def test_array_driver_with_metrics_armed_matches_too(policy):
    assert array_fingerprint(policy, metrics=True) == RECORDED[policy]
