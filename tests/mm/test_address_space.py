"""Unit tests for processes, VMAs and region lookup."""

import pytest

from repro.mm.address_space import MemoryRegion, Process


def test_region_validation():
    with pytest.raises(ValueError):
        MemoryRegion(start_vpage=0, n_pages=0)
    with pytest.raises(ValueError):
        MemoryRegion(start_vpage=-1, n_pages=5)


def test_region_contains():
    region = MemoryRegion(10, 5)
    assert region.contains(10)
    assert region.contains(14)
    assert not region.contains(15)
    assert not region.contains(9)
    assert region.end_vpage == 15


def test_processes_get_unique_pids():
    assert Process().pid != Process().pid


def test_region_lookup():
    process = Process()
    anon = process.mmap_anon(0, 10)
    file_region = process.mmap_file(100, 10)
    assert process.region_for(5) is anon
    assert process.region_for(105) is file_region


def test_unmapped_access_raises():
    process = Process()
    process.mmap_anon(0, 10)
    with pytest.raises(LookupError):
        process.region_for(50)


def test_overlap_rejected():
    process = Process()
    process.mmap_anon(0, 10)
    with pytest.raises(ValueError):
        process.mmap_anon(5, 10)
    with pytest.raises(ValueError):
        process.mmap_anon(0, 1)
    # Touching at the boundary is fine (half-open ranges).
    process.mmap_anon(10, 5)


def test_overlap_rejected_before_existing():
    process = Process()
    process.mmap_anon(10, 10)
    with pytest.raises(ValueError):
        process.mmap_anon(5, 6)
    process.mmap_anon(5, 5)  # exactly adjacent is fine


def test_region_kinds():
    process = Process()
    assert process.mmap_anon(0, 5).is_anon
    assert not process.mmap_file(10, 5).is_anon


def test_supervised_flag():
    process = Process()
    region = process.mmap(MemoryRegion(0, 5, supervised=True))
    assert region.supervised


def test_footprint_counts_all_regions():
    process = Process()
    process.mmap_anon(0, 5)
    process.mmap_file(10, 7)
    assert process.footprint_pages() == 12
    assert process.mapped_vpages() == 0  # nothing resident yet


def test_many_regions_lookup():
    process = Process()
    regions = [process.mmap_anon(i * 100, 10) for i in range(20)]
    for i, region in enumerate(regions):
        assert process.region_for(i * 100 + 9) is region
