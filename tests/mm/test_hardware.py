"""Unit tests for the tier/latency hardware model."""

from repro.mm.hardware import HardwareModel, MemoryTier
from repro.sim.config import LatencyConfig


def test_tier_ordering():
    assert MemoryTier.DRAM < MemoryTier.PM
    assert MemoryTier.DRAM.is_top
    assert MemoryTier.PM.is_bottom


def test_tier_neighbours():
    assert MemoryTier.DRAM.next_lower() is MemoryTier.PM
    assert MemoryTier.PM.next_lower() is None
    assert MemoryTier.PM.next_higher() is MemoryTier.DRAM
    assert MemoryTier.DRAM.next_higher() is None


def test_access_latencies_match_config():
    latency = LatencyConfig(dram_read_ns=10, dram_write_ns=11, pm_read_ns=30, pm_write_ns=12)
    model = HardwareModel(latency)
    assert model.access_ns(MemoryTier.DRAM, is_write=False) == 10
    assert model.access_ns(MemoryTier.DRAM, is_write=True) == 11
    assert model.access_ns(MemoryTier.PM, is_write=False) == 30
    assert model.access_ns(MemoryTier.PM, is_write=True) == 12


def test_migrate_cost_scales_with_pages():
    model = HardwareModel(LatencyConfig(page_copy_ns=100))
    assert model.migrate_ns() == 100
    assert model.migrate_ns(pages=5) == 500


def test_scan_cost_scales_with_pages():
    model = HardwareModel(LatencyConfig(scan_page_ns=7))
    assert model.scan_ns(10) == 70
    assert model.scan_ns(0) == 0


def test_hint_fault_cost():
    model = HardwareModel(LatencyConfig(hint_fault_ns=999))
    assert model.hint_fault_ns() == 999
