"""Unit tests for the generic PFRA scan machinery."""

import pytest

from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.vmscan import (
    active_ratio_threshold,
    deactivate_excess_active,
    mark_page_accessed,
    shrink_inactive_list,
)
from repro.sim.config import SimulationConfig


@pytest.fixture
def system():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "static").system


def resident_page(system, node, process, vpage, *, kind=ListKind.INACTIVE):
    """Allocate a page on ``node``, map it, and put it on a list."""
    page = node.allocate_page(is_anon=True)
    process.page_table.map(vpage, page)
    node.lruvec.list_of(page, kind).add_head(page)
    if kind is ListKind.ACTIVE:
        page.set(PageFlags.ACTIVE)
    return page


def test_active_ratio_threshold_at_least_one(system):
    node = system.nodes[0]
    assert active_ratio_threshold(node) >= 1.0


def test_active_ratio_threshold_cap_override(system):
    node = system.nodes[0]
    assert active_ratio_threshold(node, cap=3.5) == 3.5


def test_mark_accessed_inactive_ladder(system):
    """Edges 2 then 6: unreferenced -> referenced -> active."""
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 8)
    page = resident_page(system, node, process, 0)
    mark_page_accessed(system, page)
    assert page.test(PageFlags.REFERENCED)
    assert page.lru.kind is ListKind.INACTIVE
    mark_page_accessed(system, page)
    assert page.lru.kind is ListKind.ACTIVE
    assert page.test(PageFlags.ACTIVE)
    assert not page.test(PageFlags.REFERENCED)


def test_mark_accessed_active_ladder(system):
    """Edges 7/8: active unreferenced -> active referenced."""
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 8)
    page = resident_page(system, node, process, 0, kind=ListKind.ACTIVE)
    mark_page_accessed(system, page)
    assert page.test(PageFlags.REFERENCED)
    assert page.lru.kind is ListKind.ACTIVE


def test_mark_accessed_second_reference_hook(system):
    """Edge 10 fires only through the supplied hook."""
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 8)
    page = resident_page(system, node, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    calls = []
    mark_page_accessed(system, page, on_second_reference=lambda n, p: calls.append((n, p)))
    assert calls == [(node, page)]


def test_mark_accessed_without_hook_keeps_page_active(system):
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 8)
    page = resident_page(system, node, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    mark_page_accessed(system, page)
    assert page.lru.kind is ListKind.ACTIVE


def test_mark_accessed_promote_list_self_loop(system):
    """Edge 12: promote-list pages stay put on further access."""
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 8)
    page = resident_page(system, node, process, 0, kind=ListKind.PROMOTE)
    mark_page_accessed(system, page)
    assert page.lru.kind is ListKind.PROMOTE
    assert page.test(PageFlags.REFERENCED)


def test_mark_accessed_off_lru_is_noop(system):
    node = system.nodes[0]
    page = node.allocate_page(is_anon=True)
    mark_page_accessed(system, page)  # must not raise
    assert page.lru is None


def test_deactivate_moves_unreferenced_to_inactive(system):
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 16)
    pages = [resident_page(system, node, process, i, kind=ListKind.ACTIVE) for i in range(4)]
    result = deactivate_excess_active(system, node, True, budget=16, force=True)
    assert result.deactivated == 4
    for page in pages:
        assert page.lru.kind is ListKind.INACTIVE
        assert not page.test(PageFlags.ACTIVE)


def test_deactivate_gives_accessed_pages_second_chance(system):
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 16)
    page = resident_page(system, node, process, 0, kind=ListKind.ACTIVE)
    process.page_table.lookup(0).accessed = True
    result = deactivate_excess_active(system, node, True, budget=16, force=True)
    assert result.referenced == 1
    assert page.lru.kind is ListKind.ACTIVE
    assert page.test(PageFlags.REFERENCED)


def test_deactivate_respects_ratio_without_force(system):
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 64)
    # 1 active : 10 inactive is far below any threshold -> no work.
    resident_page(system, node, process, 0, kind=ListKind.ACTIVE)
    for i in range(1, 11):
        resident_page(system, node, process, i)
    result = deactivate_excess_active(system, node, True, budget=64)
    assert result.scanned == 0


def test_deactivate_budget_respected(system):
    node = system.nodes[0]
    process = system.create_process()
    process.mmap_anon(0, 64)
    for i in range(10):
        resident_page(system, node, process, i, kind=ListKind.ACTIVE)
    result = deactivate_excess_active(system, node, True, budget=3, force=True)
    assert result.scanned == 3


def test_shrink_inactive_evicts_at_lowest_tier(system):
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    pages = [resident_page(system, pm, process, i) for i in range(4)]
    result = shrink_inactive_list(system, pm, True, target_free=2, budget=16, demote_dest=None)
    assert result.evicted == 2
    assert system.backing.swapped_pages == 2
    # Evicted pages are unmapped; survivors remain.
    resident = sum(1 for page in pages if page.mapped)
    assert resident == 2


def test_shrink_inactive_demotes_when_dest_given(system):
    dram, pm = system.nodes[0], system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    page = resident_page(system, dram, process, 0)
    result = shrink_inactive_list(system, dram, True, target_free=1, budget=16, demote_dest=pm)
    assert result.demoted == 1
    assert page.node_id == pm.node_id
    assert page.lru.kind is ListKind.INACTIVE
    assert page.mapped  # demotion keeps the mapping


def test_shrink_inactive_referenced_pages_climb(system):
    """Edges 1 and 6 fire during reclaim scans too."""
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    page = resident_page(system, pm, process, 0)
    process.page_table.lookup(0).accessed = True
    result = shrink_inactive_list(system, pm, True, target_free=1, budget=1, demote_dest=None)
    assert result.referenced == 1
    assert page.test(PageFlags.REFERENCED)
    # Second round with the flag already set: activation.
    process.page_table.lookup(0).accessed = True
    result = shrink_inactive_list(system, pm, True, target_free=1, budget=1, demote_dest=None)
    assert result.activated == 1
    assert page.lru.kind is ListKind.ACTIVE


def test_shrink_inactive_skips_locked(system):
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    page = resident_page(system, pm, process, 0)
    page.set(PageFlags.LOCKED)
    result = shrink_inactive_list(system, pm, True, target_free=1, budget=16, demote_dest=None)
    assert result.evicted == 0
    assert page.mapped


def test_shrink_inactive_rotates_locked_to_head(system):
    """Pinned pages rotate out of the way instead of clogging the tail."""
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    locked = resident_page(system, pm, process, 0)
    locked.set(PageFlags.LOCKED)
    clean = resident_page(system, pm, process, 1)
    inactive = pm.lruvec.list_for(ListKind.INACTIVE, True)
    assert inactive.tail is locked
    result = shrink_inactive_list(system, pm, True, target_free=1, budget=16, demote_dest=None)
    assert result.evicted == 1  # the clean page behind the locked one
    assert not clean.mapped
    assert locked.mapped
    assert inactive.head is locked  # rotated, so the next scan starts past it


def test_shrink_inactive_rotates_unevictable_to_head(system):
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    pinned = resident_page(system, pm, process, 0)
    pinned.set(PageFlags.UNEVICTABLE)
    inactive = pm.lruvec.list_for(ListKind.INACTIVE, True)
    shrink_inactive_list(system, pm, True, target_free=1, budget=16, demote_dest=None)
    assert pinned.mapped
    assert inactive.head is pinned


def test_shrink_inactive_rotates_on_failed_demotion(system):
    """A full demotion destination must not stall the scan at the tail."""
    dram, pm = system.nodes[0], system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    while pm.can_allocate():  # exhaust the destination
        filler = pm.allocate_page(is_anon=True)
        pm.lruvec.list_of(filler, ListKind.INACTIVE).add_head(filler)
    page = resident_page(system, dram, process, 0)
    inactive = dram.lruvec.list_for(ListKind.INACTIVE, True)
    result = shrink_inactive_list(system, dram, True, target_free=1, budget=4, demote_dest=pm)
    assert result.demoted == 0
    assert result.evicted == 0  # a demotion tier exists, so no swap-out
    assert page.mapped
    assert page.node_id == dram.node_id
    assert inactive.head is page  # rotated: the scan made progress


def test_shrink_inactive_stops_at_target(system):
    pm = system.nodes[1]
    process = system.create_process()
    process.mmap_anon(0, 16)
    for i in range(8):
        resident_page(system, pm, process, i)
    result = shrink_inactive_list(system, pm, True, target_free=3, budget=16, demote_dest=None)
    assert result.evicted == 3


def test_active_ratio_threshold_ignores_offline_frames():
    """Section III-C sizes the ratio by memory *available* in the tier:
    frames taken offline (capacity-loss fault, hot-remove) must shrink
    the threshold, not keep it sized for frames the node no longer has."""
    from repro.mm.hardware import MemoryTier
    from repro.mm.numa import NumaNode

    node = NumaNode.create(1, MemoryTier.PM, 1 << 20, 1 << 20)  # 4 GiB
    full = active_ratio_threshold(node)
    assert full > 1.0
    node.take_offline(3 * (1 << 18))  # lose 3 GiB
    assert active_ratio_threshold(node) < full
    assert active_ratio_threshold(node) == pytest.approx(
        active_ratio_threshold(NumaNode.create(1, MemoryTier.PM, 1 << 18, 1 << 18))
    )
    node.bring_online(3 * (1 << 18))
    assert active_ratio_threshold(node) == pytest.approx(full)


# -- columnar deactivate == scalar deactivate (bit-identity) -----------------


def _warmed_machine():
    """A machine with populated, perturbed active lists on every node."""
    machine = Machine(
        SimulationConfig(dram_pages=(128,), pm_pages=(512,)), "multiclock"
    )
    process = machine.create_process()
    process.mmap_anon(0, 500)
    for vpage in range(500):
        machine.system.touch(process, vpage)
    for vpage in range(500):
        machine.system.touch(process, vpage)  # second touch activates
    machine.clock.advance_app(int(5e8))
    machine.drain_daemons()
    # Deterministic perturbation: mixed accessed bits and REFERENCED
    # flags so the scan exercises all four classification outcomes.
    store = machine.system.pagestore
    ref = int(PageFlags.REFERENCED)
    store.pte_accessed[:] = False
    store.pte_accessed[::3] = True
    store.flags[::5] |= ref
    store.flags[2::7] &= ~ref
    return machine


def _digest(machine):
    store = machine.system.pagestore
    state = []
    for node in machine.system.nodes.values():
        for lst in node.lruvec.all_lists():
            order = [page.pfn for page in lst]
            state.append((
                lst.name,
                order,
                [int(store.flags[pfn]) for pfn in order],
                [bool(store.pte_accessed[pfn]) for pfn in order],
            ))
    return state


@pytest.mark.parametrize("budget", [7, 64, 300, 5000])
def test_vector_deactivate_bit_identical_to_scalar(budget):
    from repro.mm import vmscan

    vec = _warmed_machine()
    ref = _warmed_machine()
    assert _digest(vec) == _digest(ref)  # identical starting states

    for node_id in list(vec.system.nodes):
        for is_anon in (True, False):
            node_v = vec.system.nodes[node_id]
            node_r = ref.system.nodes[node_id]
            if not len(node_v.lruvec.list_for(ListKind.ACTIVE, is_anon)):
                continue
            # Vector arm: the public forced entry (no trace/hook/weights).
            rv = deactivate_excess_active(
                vec.system, node_v, is_anon, budget, force=True
            )
            # Scalar arm: the reference loop, called directly.
            rr = vmscan.ScanResult()
            vmscan._deactivate_scalar(
                ref.system, node_r,
                node_r.lruvec.list_for(ListKind.ACTIVE, is_anon),
                is_anon, budget, None, None, True, None, rr,
            )
            assert (rv.scanned, rv.deactivated, rv.referenced) == (
                rr.scanned, rr.deactivated, rr.referenced
            )
    assert _digest(vec) == _digest(ref)
