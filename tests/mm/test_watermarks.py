"""Unit tests for watermark levels and pressure classification."""

import pytest

from repro.mm.watermarks import PressureLevel, Watermarks, compute_watermarks


def test_watermark_ordering_enforced():
    with pytest.raises(ValueError):
        Watermarks(min_pages=10, low_pages=5, high_pages=20)
    with pytest.raises(ValueError):
        Watermarks(min_pages=0, low_pages=5, high_pages=20)


def test_pressure_classification():
    marks = Watermarks(min_pages=10, low_pages=20, high_pages=30)
    assert marks.pressure(5) is PressureLevel.MIN
    assert marks.pressure(10) is PressureLevel.LOW
    assert marks.pressure(19) is PressureLevel.LOW
    assert marks.pressure(20) is PressureLevel.NONE
    assert marks.pressure(100) is PressureLevel.NONE


def test_below_high_and_reclaim_target():
    marks = Watermarks(min_pages=10, low_pages=20, high_pages=30)
    assert marks.below_high(29)
    assert not marks.below_high(30)
    assert marks.reclaim_target(25) == 5
    assert marks.reclaim_target(35) == 0


def test_compute_watermarks_valid_for_any_size():
    for pages in (16, 100, 4096, 1 << 20):
        marks = compute_watermarks(pages, pages * 4)
        assert 0 < marks.min_pages <= marks.low_pages <= marks.high_pages
        assert marks.high_pages < pages


def test_compute_watermarks_rejects_nonpositive():
    with pytest.raises(ValueError):
        compute_watermarks(0, 100)
    with pytest.raises(ValueError):
        compute_watermarks(100, 0)


def test_small_tier_gets_proportionally_more_headroom():
    """A minority (DRAM) node keeps a larger free fraction than a node
    holding most of the machine's memory — that headroom receives
    promotions."""
    small = compute_watermarks(1000, 10_000)
    large = compute_watermarks(9000, 10_000)
    assert small.high_pages / 1000 > large.high_pages / 9000


def test_pressure_levels_ordered():
    assert PressureLevel.NONE < PressureLevel.LOW < PressureLevel.MIN
