"""Figure-4 state machine: every transition 1-13 exercised by name.

This is the transition-coverage suite DESIGN.md promises for Figure 4.
Each test drives the real machinery (mark_page_accessed, kpromoted,
demotion, allocation) and asserts the page lands in the labelled state.
"""

import pytest

from repro.core.state import PageState, classify, move_to_promote, recycle_promote_to_active
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import DaemonConfig, SimulationConfig


@pytest.fixture
def machine():
    return Machine(
        SimulationConfig(
            dram_pages=(64,),
            pm_pages=(256,),
            daemons=DaemonConfig(kpromoted_interval_s=0.001, kswapd_interval_s=0.001),
        ),
        "multiclock",
    )


def touch_supervised(machine, process, vpage, times=1):
    for __ in range(times):
        machine.system.touch(process, vpage)
        machine.policy.mark_page_accessed(process.page_table.lookup(vpage).page)


def new_resident_page(machine, vpage=0):
    """An unsupervised resident page: the ladder only advances through
    the explicit ``mark_page_accessed`` calls the tests make."""
    process = machine.create_process()
    process.mmap_anon(0, 64)
    machine.system.touch(process, vpage)
    return process, process.page_table.lookup(vpage).page


def test_edge5_new_page_starts_inactive_unreferenced(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert classify(page) is PageState.INACTIVE_UNREFERENCED


def test_edge2_supervised_access_marks_referenced(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8, supervised=True)
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert classify(page) is PageState.INACTIVE_REFERENCED


def test_edge1_scan_advances_inactive_page(machine):
    """Unsupervised access is picked up by the kpromoted inactive scan."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    kp = machine.policy._kpromoted[1]  # PM-node daemon... page is in DRAM
    kp_dram = machine.policy._kpromoted[0]
    machine.system.touch(process, 0)  # sets the PTE accessed bit again
    kp_dram.run(machine.clock.now_ns)
    assert classify(page) is PageState.INACTIVE_REFERENCED


def test_edge6_second_reference_activates(machine):
    __, page = new_resident_page(machine)
    machine.policy.mark_page_accessed(page)  # -> referenced
    machine.policy.mark_page_accessed(page)  # -> active
    assert classify(page) is PageState.ACTIVE_UNREFERENCED


def test_edge7_active_access_sets_referenced(machine):
    __, page = new_resident_page(machine)
    for __ in range(3):
        machine.policy.mark_page_accessed(page)
    assert classify(page) is PageState.ACTIVE_REFERENCED


def test_edge10_fourth_reference_moves_to_promote_list(machine):
    __, page = new_resident_page(machine)
    for __ in range(4):
        machine.policy.mark_page_accessed(page)
    assert classify(page) is PageState.PROMOTE
    assert page.test(PageFlags.PROMOTE)


def test_edge12_promote_list_access_self_loop(machine):
    __, page = new_resident_page(machine)
    for __ in range(5):
        machine.policy.mark_page_accessed(page)
    assert classify(page) is PageState.PROMOTE


def test_edge11_stale_promote_page_recycles_to_active(machine):
    """An unaccessed promote-list page returns to active unreferenced."""
    node = machine.system.nodes[1]
    process = machine.create_process()
    process.mmap_anon(0, 8)
    # Build a PM-resident page directly.
    page = node.allocate_page(is_anon=True)
    process.page_table.map(0, page)
    node.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    page.set(PageFlags.ACTIVE)
    move_to_promote(node, page)
    page.clear(PageFlags.REFERENCED)  # simulate: joined long ago, never touched
    kp = next(k for k in machine.policy._kpromoted if k.node is node)
    kp.run(machine.clock.now_ns)
    assert classify(page) is PageState.ACTIVE_UNREFERENCED


def test_edge13_referenced_promote_page_promoted_to_dram(machine):
    node = machine.system.nodes[1]
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(0, page)
    node.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    page.set(PageFlags.ACTIVE)
    move_to_promote(node, page)
    pte.accessed = True  # referenced again since joining
    kp = next(k for k in machine.policy._kpromoted if k.node is node)
    kp.run(machine.clock.now_ns)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("migrate.promotions") == 1


def test_edge9_idle_active_page_deactivates(machine):
    """Pressure rebalancing returns idle active pages to inactive."""
    from repro.mm.vmscan import deactivate_excess_active

    node = machine.system.nodes[0]
    __, page = new_resident_page(machine)
    machine.policy.mark_page_accessed(page)
    machine.policy.mark_page_accessed(page)
    assert classify(page) is PageState.ACTIVE_UNREFERENCED
    page.harvest_accessed()  # the page then goes idle for a long time
    deactivate_excess_active(machine.system, node, True, budget=64, force=True)
    assert classify(page) is PageState.INACTIVE_UNREFERENCED


def test_edge3_demotion_moves_page_down_a_tier(machine):
    from repro.mm.vmscan import shrink_inactive_list

    dram, pm = machine.system.nodes[0], machine.system.nodes[1]
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert page.node_id == dram.node_id
    page.harvest_accessed()  # long idle: accessed bit aged away
    shrink_inactive_list(machine.system, dram, True, 1, 16, demote_dest=pm)
    assert page.node_id == pm.node_id
    assert classify(page) is PageState.INACTIVE_UNREFERENCED


def test_edge4_lowest_tier_page_freed_to_swap(machine):
    from repro.mm.vmscan import shrink_inactive_list

    pm = machine.system.nodes[1]
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page = pm.allocate_page(is_anon=True)
    process.page_table.map(0, page)
    pm.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    shrink_inactive_list(machine.system, pm, True, 1, 16, demote_dest=None)
    assert classify(page) is PageState.OFF_LRU
    assert machine.system.backing.is_swapped(process.pid, 0)


def test_classify_unevictable(machine):
    from repro.mm.address_space import MemoryRegion

    process = machine.create_process()
    process.mmap(MemoryRegion(0, 4, mlocked=True))
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert classify(page) is PageState.UNEVICTABLE


def test_move_to_promote_sets_flags():
    from repro.mm.hardware import MemoryTier
    from repro.mm.numa import NumaNode
    from repro.mm.page import Page

    node = NumaNode.create(0, MemoryTier.PM, 16, 64)
    page = node.allocate_page(is_anon=True)
    node.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    page.set(PageFlags.ACTIVE)
    move_to_promote(node, page)
    assert page.test(PageFlags.PROMOTE)
    assert page.test(PageFlags.REFERENCED)
    assert not page.test(PageFlags.ACTIVE)
    assert page.lru.kind is ListKind.PROMOTE


def test_recycle_clears_promote_flag():
    from repro.mm.hardware import MemoryTier
    from repro.mm.numa import NumaNode

    node = NumaNode.create(0, MemoryTier.PM, 16, 64)
    page = node.allocate_page(is_anon=True)
    node.lruvec.list_of(page, ListKind.PROMOTE).add_head(page)
    page.set(PageFlags.PROMOTE)
    recycle_promote_to_active(node, page)
    assert not page.test(PageFlags.PROMOTE)
    assert page.test(PageFlags.ACTIVE)
    assert not page.test(PageFlags.REFERENCED)
    assert page.lru.kind is ListKind.ACTIVE
