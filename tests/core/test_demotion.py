"""Unit tests for the watermark-driven demotion daemon."""

import pytest

from repro.core.demotion import DemotionDaemon
from repro.core.state import move_to_promote
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "multiclock")


def dram_kswapd(machine) -> DemotionDaemon:
    return next(d for d in machine.policy._kswapd if not d.node.is_pm)


def fill_dram(machine, process):
    dram = machine.system.nodes[0]
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        process.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    return vpage


def test_no_work_without_pressure(machine):
    assert dram_kswapd(machine).run(0) == 0
    assert machine.stats.get("migrate.demotions") == 0


def test_pressure_triggers_demotion_to_pm(machine):
    process = machine.create_process()
    process.mmap_anon(0, 128)
    fill_dram(machine, process)
    dram = machine.system.nodes[0]
    assert dram.free_pages == 0
    work = dram_kswapd(machine).run(0)
    assert work > 0
    assert machine.stats.get("migrate.demotions") > 0
    assert dram.free_pages >= dram.watermarks.high_pages


def test_demoted_pages_keep_their_mappings(machine):
    process = machine.create_process()
    process.mmap_anon(0, 128)
    mapped = fill_dram(machine, process)
    dram_kswapd(machine).run(0)
    assert len(process.page_table) == mapped


def test_promote_list_relieved_first(machine):
    """Section III-C step 1: promote-list pages leave before reclaim.

    On a pressured DRAM node the promote list cannot go higher, so its
    pages move to the active list."""
    process = machine.create_process()
    process.mmap_anon(0, 128)
    fill_dram(machine, process)
    dram = machine.system.nodes[0]
    victim = process.page_table.lookup(0).page
    victim.lru.remove(victim)
    victim.set(PageFlags.ACTIVE)
    dram.lruvec.list_of(victim, ListKind.ACTIVE).add_head(victim)
    move_to_promote(dram, victim)
    dram_kswapd(machine).run(0)
    assert victim.lru.kind is ListKind.ACTIVE
    assert machine.system.tier_of(victim) is MemoryTier.DRAM


def test_pm_promote_list_under_pressure_promotes_up(machine):
    """On a pressured PM node, promote-list pages migrate to DRAM."""
    pm = machine.system.nodes[1]
    process = machine.create_process()
    process.mmap_anon(0, 1024)
    vpage = 0
    while pm.can_allocate():
        page = pm.allocate_page(is_anon=True)
        process.page_table.map(vpage, page)
        pm.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    hot = process.page_table.lookup(0).page
    hot.lru.remove(hot)
    hot.set(PageFlags.ACTIVE)
    pm.lruvec.list_of(hot, ListKind.ACTIVE).add_head(hot)
    move_to_promote(pm, hot)
    pm_kswapd = next(d for d in machine.policy._kswapd if d.node.is_pm)
    pm_kswapd.run(0)
    assert machine.system.tier_of(hot) is MemoryTier.DRAM


def test_referenced_pages_survive_demotion_scan(machine):
    process = machine.create_process()
    process.mmap_anon(0, 128)
    fill_dram(machine, process)
    hot = process.page_table.lookup(5)
    hot.accessed = True
    dram_kswapd(machine).run(0)
    assert machine.system.tier_of(hot.page) is MemoryTier.DRAM


def test_pm_pressure_falls_back_to_swap(machine):
    """The lowest tier evicts to the backing store (edge 4)."""
    small = Machine(SimulationConfig(dram_pages=(16,), pm_pages=(32,)), "multiclock")
    process = small.create_process()
    process.mmap_anon(0, 64)
    for node in small.system.nodes.values():
        vbase = 0 if not node.is_pm else 100
        i = 0
        while node.can_allocate():
            page = node.allocate_page(is_anon=True)
            process.page_table.map(vbase + i, page)
            node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
            i += 1
    pm_kswapd = next(d for d in small.policy._kswapd if d.node.is_pm)
    pm_kswapd.run(0)
    assert small.system.backing.swapped_pages > 0
