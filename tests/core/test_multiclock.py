"""Integration-level tests for the MULTI-CLOCK policy."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ShiftingHotSetWorkload, ZipfWorkload

FAST_DAEMONS = DaemonConfig(
    kpromoted_interval_s=0.002, kswapd_interval_s=0.002, hint_scan_interval_s=0.002
)


@pytest.fixture
def config():
    return SimulationConfig(dram_pages=(512,), pm_pages=(2048,), daemons=FAST_DAEMONS)


def test_daemons_registered_per_node(config):
    machine = Machine(config, "multiclock")
    names = {d.name for d in machine.scheduler.daemons}
    assert "kpromoted/0" in names
    assert "kpromoted/1" in names
    assert "kswapd/0" in names
    assert "kswapd/1" in names


def test_hot_pm_pages_get_promoted(config):
    """Unsupervised repeated access to PM pages ends with DRAM residency."""
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 2048)
    # Fill well past DRAM capacity so plenty of pages live in PM.
    for vpage in range(1200):
        machine.touch(process, vpage)
    pm_resident = [
        vpage
        for vpage in range(1200)
        if machine.system.tier_of(process.page_table.lookup(vpage).page)
        is MemoryTier.PM
    ]
    hot = pm_resident[:32]
    assert len(hot) == 32, "fill phase must leave pages in PM"
    for __ in range(400):
        for vpage in hot:
            machine.touch(process, vpage, lines=8)
    dram_hot = sum(
        1
        for vpage in hot
        if machine.system.tier_of(process.page_table.lookup(vpage).page)
        is MemoryTier.DRAM
    )
    assert dram_hot >= len(hot) * 3 // 4
    assert machine.stats.get("migrate.promotions") >= dram_hot


def test_beats_static_on_shifting_hot_set(config):
    workload = lambda: ShiftingHotSetWorkload(  # noqa: E731 - test-local factory
        pages=1500, ops=120_000, phase_ops=30_000, hot_fraction=0.15, seed=3
    )
    static = run_workload(workload(), config, policy="static")
    multiclock = run_workload(workload(), config, policy="multiclock")
    assert multiclock.throughput_ops > static.throughput_ops


def test_promotes_fewer_pages_than_nimble(config):
    """Fig 8's shape: Nimble promotes more pages than MULTI-CLOCK."""
    workload = lambda: ZipfWorkload(pages=1500, ops=80_000, seed=5)  # noqa: E731
    nimble = run_workload(workload(), config, policy="nimble")
    multiclock = run_workload(workload(), config, policy="multiclock")
    assert multiclock.promotions < nimble.promotions


def test_direct_reclaim_prevents_oom():
    config = SimulationConfig(dram_pages=(32,), pm_pages=(64,), daemons=FAST_DAEMONS)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 256)
    # Touch twice the machine's capacity; reclaim must keep us alive.
    for vpage in range(200):
        machine.touch(process, vpage)
    assert machine.system.backing.swapped_pages > 0
    assert machine.stats.get("oom.kills") == 0


def test_mark_page_accessed_feeds_promote_list(config):
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 8, supervised=True)
    for __ in range(5):
        machine.system.touch(process, 0)
    assert machine.stats.get("multiclock.promote_list_adds") >= 1


def test_windowed_promotion_series_recorded(config):
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 2048)
    for vpage in range(700):
        machine.touch(process, vpage)
    for __ in range(300):
        for vpage in range(700, 720):
            machine.touch(process, vpage, lines=16)
    series = machine.stats.series["promotions_window"]
    assert sum(p.value for p in series.totals()) == machine.stats.get(
        "migrate.promotions"
    )
