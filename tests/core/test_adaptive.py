"""Unit tests for the adaptive kpromoted interval controller."""

import pytest

from repro.core.adaptive import (
    BACKOFF,
    IDLE_WAKEUPS_BEFORE_BACKOFF,
    SPEEDUP,
    WARMUP_WAKEUPS,
)
from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.sim.vclock import NANOS_PER_SECOND

BASE_S = 0.01


@pytest.fixture
def machine():
    config = SimulationConfig(
        dram_pages=(64,),
        pm_pages=(512,),
        daemons=DaemonConfig(kpromoted_interval_s=BASE_S, kswapd_interval_s=BASE_S),
    )
    return Machine(config, "multiclock-adaptive")


def kpromoted_daemon(machine, node_id):
    return machine.policy._kpromoted_daemons[f"kpromoted/{node_id}"]


def retune(machine, node_id, **signals):
    defaults = dict(yield_=0, pm_delta=0, total_delta=0, promos_delta=0, reacc_delta=0)
    defaults.update(signals)
    daemon = kpromoted_daemon(machine, node_id)
    machine.policy._retune(daemon, node_id, **defaults)
    return daemon


def skip_warmup(machine, node_id):
    machine.policy._wakeups_seen[node_id] = WARMUP_WAKEUPS


def test_registered_and_wires_daemons(machine):
    names = {d.name for d in machine.scheduler.daemons}
    assert "kpromoted/0" in names and "kpromoted/1" in names
    assert machine.policy.current_intervals_s()["kpromoted/1"] == pytest.approx(BASE_S)


def test_warmup_wakeups_do_not_retune(machine):
    daemon = kpromoted_daemon(machine, 1)
    before = daemon.interval_ns
    for __ in range(WARMUP_WAKEUPS):
        retune(machine, 1, pm_delta=90, total_delta=100, yield_=50)
    assert daemon.interval_ns == before


def test_pm_pressure_with_yield_speeds_up(machine):
    skip_warmup(machine, 1)
    daemon = retune(machine, 1, pm_delta=60, total_delta=100, yield_=10)
    assert daemon.interval_ns == int(BASE_S * NANOS_PER_SECOND * SPEEDUP)
    assert machine.stats.get("adaptive.speedups") == 1


def test_pm_pressure_without_yield_holds(machine):
    """Scan-resistant traffic: accelerating would only burn CPU."""
    skip_warmup(machine, 1)
    daemon = retune(machine, 1, pm_delta=60, total_delta=100, yield_=0)
    # pm_share is high so this is not "quiet" either: hold.
    assert daemon.interval_ns == int(BASE_S * NANOS_PER_SECOND)


def test_idle_machine_backs_off_after_streak(machine):
    skip_warmup(machine, 1)
    daemon = kpromoted_daemon(machine, 1)
    for __ in range(IDLE_WAKEUPS_BEFORE_BACKOFF):
        retune(machine, 1, total_delta=0)
    assert daemon.interval_ns == int(BASE_S * NANOS_PER_SECOND * BACKOFF)
    assert machine.stats.get("adaptive.backoffs") == 1


def test_poor_promotion_quality_forces_backoff(machine):
    """Low re-access rate means the interval undercut the workload's
    recurrence time: the filter degraded into one-touch selection."""
    skip_warmup(machine, 1)
    daemon = retune(
        machine, 1,
        pm_delta=60, total_delta=100, yield_=40, promos_delta=20, reacc_delta=1,
    )
    assert daemon.interval_ns == int(BASE_S * NANOS_PER_SECOND * BACKOFF)
    assert machine.stats.get("adaptive.quality_backoffs") == 1


def test_good_quality_allows_speedup(machine):
    skip_warmup(machine, 1)
    daemon = retune(
        machine, 1,
        pm_delta=60, total_delta=100, yield_=40, promos_delta=20, reacc_delta=15,
    )
    assert daemon.interval_ns < int(BASE_S * NANOS_PER_SECOND)


def test_interval_respects_bounds(machine):
    skip_warmup(machine, 1)
    daemon = kpromoted_daemon(machine, 1)
    for __ in range(20):
        retune(machine, 1, pm_delta=90, total_delta=100, yield_=50)
    assert daemon.interval_ns >= machine.policy._min_interval_ns
    for __ in range(60):
        retune(machine, 1, total_delta=0)
    assert daemon.interval_ns <= machine.policy._max_interval_ns


def test_end_to_end_run_adapts(machine):
    process = machine.create_process()
    process.mmap_anon(0, 1024)
    # A hot working set that fits memory but not DRAM: PM traffic is
    # heavy and promotable, so the controller must react.
    for round_ in range(150):
        for vpage in range(400):
            machine.touch(process, vpage, lines=8)
    adjustments = (
        machine.stats.get("adaptive.speedups")
        + machine.stats.get("adaptive.backoffs")
        + machine.stats.get("adaptive.quality_backoffs")
    )
    assert adjustments > 0
    assert machine.stats.get("kpromoted.runs") > 0
