"""Unit tests for the Section VII RW-weighted MULTI-CLOCK extension."""

import pytest

from repro.core.state import move_to_promote
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(32,), pm_pages=(256,)), "multiclock-rw")


def pm_promote_candidate(machine, process, vpage, *, dirty):
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(vpage, page)
    node.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    page.set(PageFlags.ACTIVE)
    move_to_promote(node, page)
    if dirty:
        pte.dirty = True  # written since the last harvest
    pte.accessed = True
    return page


def fill_dram(machine):
    dram = machine.system.nodes[0]
    filler = machine.create_process()
    filler.mmap_anon(0, 64)
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        filler.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1


def run_pm_kpromoted(machine):
    kp = next(k for k in machine.policy._kpromoted if k.node.is_pm)
    kp.run(machine.clock.now_ns)


def test_registered_with_features(machine):
    assert machine.policy.name == "multiclock-rw"
    assert "Read-dominance" in machine.policy.features.selection_promotion


def test_promotes_freely_while_dram_has_room(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    clean = pm_promote_candidate(machine, process, 0, dirty=False)
    run_pm_kpromoted(machine)
    assert machine.system.tier_of(clean) is MemoryTier.DRAM


def test_clean_pages_skipped_under_contention(machine):
    fill_dram(machine)
    process = machine.create_process()
    process.mmap_anon(0, 8)
    clean = pm_promote_candidate(machine, process, 0, dirty=False)
    run_pm_kpromoted(machine)
    assert machine.system.tier_of(clean) is MemoryTier.PM
    assert machine.stats.get("multiclock_rw.clean_skips_under_pressure") == 1
    # Skipped pages stay hot locally (recycled to the active list).
    assert clean.lru.kind is ListKind.ACTIVE


def test_dirty_pages_promoted_under_contention(machine):
    fill_dram(machine)
    process = machine.create_process()
    process.mmap_anon(0, 8)
    dirty = pm_promote_candidate(machine, process, 0, dirty=True)
    run_pm_kpromoted(machine)
    assert machine.system.tier_of(dirty) is MemoryTier.DRAM
    # Demand demotion made the room.
    assert machine.stats.get("migrate.demotions") >= 1


def test_dirty_bit_is_consumed_by_the_decision(machine):
    fill_dram(machine)
    process = machine.create_process()
    process.mmap_anon(0, 8)
    dirty = pm_promote_candidate(machine, process, 0, dirty=True)
    run_pm_kpromoted(machine)
    assert not any(pte.dirty for pte in dirty.rmap)
