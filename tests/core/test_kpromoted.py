"""Unit tests for the kpromoted daemon."""

import pytest

from repro.core.state import move_to_promote
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import DaemonConfig, SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "multiclock")


def pm_resident(machine, process, vpage, *, kind=ListKind.INACTIVE):
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(vpage, page)
    node.lruvec.list_of(page, kind).add_head(page)
    if kind is ListKind.ACTIVE:
        page.set(PageFlags.ACTIVE)
    return page, pte


def pm_kpromoted(machine):
    return next(k for k in machine.policy._kpromoted if k.node.is_pm)


def test_unaccessed_pm_page_never_promoted(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, __ = pm_resident(machine, process, 0)
    for __round in range(5):
        pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert machine.stats.get("migrate.promotions") == 0


def test_single_access_per_scan_is_not_enough(machine):
    """One reference per scan round climbs the ladder slowly and never
    reaches the promote list with fewer than three scans — the frequency
    filter that separates MULTI-CLOCK from Nimble."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0)
    kp = pm_kpromoted(machine)
    pte.accessed = True
    kp.run(0)  # inactive unref -> inactive ref
    assert page.lru.kind is ListKind.INACTIVE
    pte.accessed = True
    kp.run(0)  # inactive ref -> active
    assert page.lru.kind is ListKind.ACTIVE
    assert machine.system.tier_of(page) is MemoryTier.PM


def test_persistent_access_promotes_within_four_scans(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0)
    kp = pm_kpromoted(machine)
    rounds = 0
    while machine.system.tier_of(page) is MemoryTier.PM and rounds < 6:
        pte.accessed = True
        kp.run(0)
        rounds += 1
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert rounds <= 4


def test_promoted_page_lands_on_dram_active_list(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    pte.accessed = True
    pm_kpromoted(machine).run(0)  # active ref + bit -> promote list, then drain
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert page.lru.kind is ListKind.ACTIVE
    assert not page.test(PageFlags.PROMOTE)


def test_selected_pages_promoted_in_same_run(machine):
    """Section III-B: "once a page is selected for promotion, the page
    gets promoted to the DRAM in the same kpromoted run"."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    pte.accessed = True
    promotions_before = machine.stats.get("migrate.promotions")
    pm_kpromoted(machine).run(0)
    assert machine.stats.get("migrate.promotions") == promotions_before + 1


def test_promotions_counted_in_stats(machine):
    """A successful drain shows up in kpromoted.promoted, not a no-op."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    pte.accessed = True
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("kpromoted.promoted") == 1
    # The engine-side counter agrees with the daemon-side one.
    assert machine.stats.get("migrate.promotions") == 1


def test_failed_promotion_not_counted(machine):
    """A locked page recycles to active and is not counted as promoted."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    page.set(PageFlags.LOCKED)
    pte.accessed = True
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert machine.stats.get("kpromoted.promoted") == 0


def test_scan_budget_limits_work(machine):
    cfg = SimulationConfig(
        dram_pages=(64,),
        pm_pages=(256,),
        daemons=DaemonConfig(scan_budget_pages=4),
    )
    machine = Machine(cfg, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for vpage in range(32):
        pm_resident(machine, process, vpage)
    pm_kpromoted(machine).run(0)
    # Budget of 4 per list x (inactive+active+promote) x (anon+file) max.
    assert machine.stats.get("kpromoted.pages_scanned") <= 4 * 6


def test_dram_promote_list_recycles_to_active(machine):
    dram = machine.system.nodes[0]
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.system.touch(process, 0)
    page = process.page_table.lookup(0).page
    page.lru.remove(page)
    page.set(PageFlags.ACTIVE)
    dram.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    move_to_promote(dram, page)
    dram_kp = next(k for k in machine.policy._kpromoted if not k.node.is_pm)
    dram_kp.run(0)
    assert page.lru.kind is ListKind.ACTIVE
    assert machine.system.tier_of(page) is MemoryTier.DRAM


def test_run_returns_system_work(machine):
    process = machine.create_process()
    process.mmap_anon(0, 16)
    for vpage in range(8):
        pm_resident(machine, process, vpage)
    work = pm_kpromoted(machine).run(0)
    assert work > 0


def test_promotion_into_full_dram_demand_demotes(machine):
    """Section III-C: promotions into a pressured DRAM tier trigger
    immediate demotions."""
    process = machine.create_process()
    process.mmap_anon(0, 512)
    # Fill DRAM completely via direct node allocation.
    dram = machine.system.nodes[0]
    filler = machine.create_process()
    filler.mmap_anon(0, 128)
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        filler.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    pte.accessed = True
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("migrate.demotions") >= 1


def test_failed_drain_counts_deactivation(machine):
    """A promote-list page that cannot migrate is recycled to the active
    list and shows up in kpromoted.deactivated."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    page.set(PageFlags.REFERENCED)
    page.set(PageFlags.LOCKED)
    pte.accessed = True
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert machine.stats.get("kpromoted.deactivated") >= 1
    assert machine.stats.get("kpromoted.promoted") == 0


def test_drain_consumes_both_reference_signals(machine):
    """The stale-REFERENCED fix: draining a promote-list page with a set
    hardware accessed bit must also clear REFERENCED, so the page lands
    upstairs without a free second reference already banked."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    node = machine.system.nodes[1]
    move_to_promote(node, page)  # sets REFERENCED by design (edge 10)
    assert page.test(PageFlags.REFERENCED)
    pte.accessed = True  # the hardware bit the old short-circuit hid behind
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert not page.test(PageFlags.REFERENCED), (
        "drain left a stale second reference on the promoted page"
    )


def test_drain_promotes_on_referenced_flag_alone(machine):
    """Clearing both signals must not break the flag-only path: a page
    whose second reference came from REFERENCED (no fresh hardware bit)
    still climbs."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, __ = pm_resident(machine, process, 0, kind=ListKind.ACTIVE)
    node = machine.system.nodes[1]
    move_to_promote(node, page)
    pm_kpromoted(machine).run(0)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert not page.test(PageFlags.REFERENCED)
