"""Detailed tests of the Section III-C demotion pipeline's ordering."""

import math

import pytest

from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.vmscan import active_ratio_threshold
from repro.sim.config import PAGE_SIZE, SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(512,)), "multiclock")


def test_ratio_threshold_formula():
    """Section III-C: "typically sqrt(10*n):1, where n is the amount of
    memory in GB available in the tier"."""
    machine = Machine(
        SimulationConfig(dram_pages=(2 * (1 << 30) // PAGE_SIZE,), pm_pages=(1024,)),
        "static",
    )
    node = machine.system.nodes[0]
    assert active_ratio_threshold(node) == pytest.approx(math.sqrt(20.0))


def test_ratio_threshold_floor_for_tiny_tiers(machine):
    assert active_ratio_threshold(machine.system.nodes[0]) == 1.0


def test_ratio_cap_override_through_config():
    config = SimulationConfig(
        dram_pages=(64,), pm_pages=(512,), active_inactive_ratio_cap=2.5
    )
    machine = Machine(config, "multiclock")
    assert config.active_inactive_ratio_cap == 2.5
    node = machine.system.nodes[0]
    assert active_ratio_threshold(node, config.active_inactive_ratio_cap) == 2.5


def test_balance_stops_at_high_watermark(machine):
    """Reclaim overshoot is bounded: kswapd frees to ``high`` and stops."""
    process = machine.create_process()
    process.mmap_anon(0, 128)
    dram = machine.system.nodes[0]
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        process.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    daemon = next(d for d in machine.policy._kswapd if not d.node.is_pm)
    daemon.balance()
    assert dram.free_pages >= dram.watermarks.high_pages
    # Not the whole tier: the overwhelming majority of pages remain.
    assert dram.used_pages > dram.capacity_pages // 2


def test_demotion_prefers_inactive_over_active(machine):
    """Active pages are only deactivated, never demoted directly; the
    inactive tail supplies the demotion victims."""
    process = machine.create_process()
    process.mmap_anon(0, 128)
    dram = machine.system.nodes[0]
    vpage = 0
    active_pages = []
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        process.page_table.map(vpage, page)
        if vpage % 2 == 0:
            page.set(PageFlags.ACTIVE)
            dram.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
            active_pages.append(page)
        else:
            dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    # Keep active pages genuinely hot so rebalancing spares them.
    for page in active_pages:
        for pte in page.rmap:
            pte.accessed = True
    daemon = next(d for d in machine.policy._kswapd if not d.node.is_pm)
    daemon.balance()
    demoted_active = sum(
        1 for page in active_pages if machine.system.nodes[page.node_id].is_pm
    )
    assert demoted_active == 0


def test_kswapd_daemon_is_idle_without_pressure(machine):
    daemon = next(d for d in machine.policy._kswapd if not d.node.is_pm)
    assert daemon.run(0) == 0
    assert machine.stats.get("migrate.demotions") == 0
