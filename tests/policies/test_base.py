"""Unit tests for the policy registry and shared defaults."""

import pytest

from repro.machine import Machine
from repro.policies.base import create_policy, policy_names
from repro.sim.config import SimulationConfig


def test_all_evaluated_policies_registered():
    names = policy_names()
    for expected in (
        "multiclock",
        "static",
        "nimble",
        "autotiering-cpm",
        "autotiering-opm",
        "autonuma",
        "memory-mode",
    ):
        assert expected in names


def test_unknown_policy_raises_with_candidates():
    machine = Machine(SimulationConfig(dram_pages=(32,), pm_pages=(64,)), "static")
    with pytest.raises(KeyError) as excinfo:
        create_policy("no-such-policy", machine.system)
    assert "multiclock" in str(excinfo.value)


def test_every_policy_has_table1_features():
    from repro.policies.base import _REGISTRY

    for name, cls in _REGISTRY.items():
        assert cls.features is not None, f"{name} is missing Table I metadata"
        assert cls.features.tiering


def test_policy_name_attribute_matches_registration():
    machine = Machine(SimulationConfig(dram_pages=(32,), pm_pages=(64,)), "nimble")
    assert machine.policy.name == "nimble"


def test_default_direct_reclaim_frees_pages():
    config = SimulationConfig(dram_pages=(16,), pm_pages=(16,))
    machine = Machine(config, "static")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for vpage in range(40):
        machine.touch(process, vpage)
    assert machine.stats.get("oom.kills") == 0
    assert machine.system.backing.swapped_pages > 0


def test_direct_reclaim_escalates_past_referenced_pages():
    """Even when every page is recently referenced, reclaim makes progress
    (rising scan priority) instead of OOM-ing with swap space free."""
    config = SimulationConfig(dram_pages=(8,), pm_pages=(8,))
    machine = Machine(config, "static")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for round_ in range(3):
        for vpage in range(30):
            machine.touch(process, vpage)
    assert machine.stats.get("oom.kills") == 0
