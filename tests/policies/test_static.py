"""Unit tests for static tiering."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.sim.config import SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "static")


def test_no_daemons(machine):
    assert machine.scheduler.daemons == []


def test_pages_born_in_dram_first(machine):
    process = machine.create_process()
    process.mmap_anon(0, 16)
    machine.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert machine.system.tier_of(page) is MemoryTier.DRAM


def test_overflow_lands_in_pm_and_stays(machine):
    process = machine.create_process()
    process.mmap_anon(0, 256)
    for vpage in range(200):
        machine.touch(process, vpage)
    pm_pages = [
        vpage
        for vpage in range(200)
        if machine.system.tier_of(process.page_table.lookup(vpage).page)
        is MemoryTier.PM
    ]
    assert pm_pages, "the fill must overflow into PM"
    # Hammer the PM pages; static tiering must never migrate them.
    for __ in range(50):
        for vpage in pm_pages[:10]:
            machine.touch(process, vpage)
    assert machine.stats.get("migrate.promotions") == 0
    assert machine.stats.get("migrate.demotions") == 0
    for vpage in pm_pages[:10]:
        page = process.page_table.lookup(vpage).page
        assert machine.system.tier_of(page) is MemoryTier.PM


def test_static_never_migrates_under_pressure(machine):
    process = machine.create_process()
    process.mmap_anon(0, 512)
    for vpage in range(310):
        machine.touch(process, vpage)
    assert machine.stats.get("migrate.promotions") == 0
    assert machine.stats.get("migrate.demotions") == 0
