"""Unit tests for the shared tier-movement helpers."""

import pytest

from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.policies import movement
from repro.sim.config import SimulationConfig

SINGLE = SimulationConfig(dram_pages=(32,), pm_pages=(128,))
DUAL = SimulationConfig(dram_pages=(32, 32), pm_pages=(128, 128), sockets=2)


def make_pm_page(machine, node_index=None, home_socket=0, vpage=0):
    process = machine.create_process(home_socket=home_socket)
    process.mmap_anon(vpage, 8)
    node = (
        machine.system.pm_nodes()[node_index]
        if node_index is not None
        else machine.system.pm_nodes()[0]
    )
    page = node.allocate_page(is_anon=True)
    process.page_table.map(vpage, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    return page


def test_roomiest_picks_most_free():
    machine = Machine(DUAL, "static")
    nodes = machine.system.dram_nodes()
    nodes[0].allocate_page(is_anon=True)
    assert movement.roomiest(nodes) is nodes[1]
    assert movement.roomiest([]) is None


def test_owner_socket_resolution():
    machine = Machine(DUAL, "static")
    page = make_pm_page(machine, home_socket=1)
    assert movement.owner_socket(machine.system, page) == 1
    orphan = machine.system.pm_nodes()[0].allocate_page(is_anon=True)
    assert movement.owner_socket(machine.system, orphan) is None


def test_promotion_prefers_local_socket():
    machine = Machine(DUAL, "static")
    page = make_pm_page(machine, node_index=1, home_socket=1)
    dest = movement.promotion_destination(machine.system, page)
    assert dest.socket == 1
    assert dest.tier is MemoryTier.DRAM


def test_promotion_holds_local_even_when_full():
    """A full local DRAM node is still the destination (demand demotion
    makes room there) rather than spilling hot pages cross-socket."""
    machine = Machine(DUAL, "static")
    local_dram = next(n for n in machine.system.dram_nodes() if n.socket == 1)
    while local_dram.can_allocate():
        filler = local_dram.allocate_page(is_anon=True)
        local_dram.lruvec.list_of(filler, ListKind.INACTIVE).add_head(filler)
    page = make_pm_page(machine, node_index=1, home_socket=1)
    dest = movement.promotion_destination(machine.system, page)
    assert dest is local_dram


def test_demotion_prefers_same_socket():
    machine = Machine(DUAL, "static")
    dram1 = next(n for n in machine.system.dram_nodes() if n.socket == 1)
    dest = movement.demotion_destination(machine.system, dram1)
    assert dest.socket == 1
    assert dest.tier is MemoryTier.PM


def test_demotion_at_bottom_tier_is_none():
    machine = Machine(SINGLE, "static")
    pm = machine.system.pm_nodes()[0]
    assert movement.demotion_destination(machine.system, pm) is None


def test_promote_page_refuses_dram_resident():
    machine = Machine(SINGLE, "static")
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.touch(process, 0)
    page = process.page_table.lookup(0).page
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert not movement.promote_page(machine.system, page)


def test_promote_page_places_on_requested_list():
    machine = Machine(SINGLE, "static")
    page = make_pm_page(machine)
    assert movement.promote_page(
        machine.system, page, place=ListKind.INACTIVE
    )
    assert page.lru.kind is ListKind.INACTIVE
    assert not page.test(PageFlags.ACTIVE)


def test_conservative_promotion_fails_without_room():
    machine = Machine(SINGLE, "static")
    dram = machine.system.dram_nodes()[0]
    while dram.can_allocate():
        filler = dram.allocate_page(is_anon=True)
        dram.lruvec.list_of(filler, ListKind.INACTIVE).add_head(filler)
    page = make_pm_page(machine)
    assert not movement.promote_page(machine.system, page, make_room=False)
    assert movement.promote_page(machine.system, page, make_room=True)


def test_demand_demote_fails_when_pm_full():
    machine = Machine(SimulationConfig(dram_pages=(16,), pm_pages=(16,)), "static")
    for node in machine.system.nodes.values():
        while node.can_allocate():
            filler = node.allocate_page(is_anon=True)
            node.lruvec.list_of(filler, ListKind.INACTIVE).add_head(filler)
    dram = machine.system.dram_nodes()[0]
    assert not movement.demand_demote(machine.system, dram, pages=1)


def test_demand_demote_skips_locked_pages():
    machine = Machine(SimulationConfig(dram_pages=(4,), pm_pages=(64,)), "static")
    dram = machine.system.dram_nodes()[0]
    pages = []
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        page.set(PageFlags.LOCKED)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        pages.append(page)
    assert not movement.demand_demote(machine.system, dram, pages=1)
    pages[0].clear(PageFlags.LOCKED)
    assert movement.demand_demote(machine.system, dram, pages=1)
