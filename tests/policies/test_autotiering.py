"""Unit tests for the hint-fault family: AT-CPM, AT-OPM, AutoNUMA."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.policies.autotiering import HISTORY_BITS, HintFaultScanner
from repro.sim.config import DaemonConfig, SimulationConfig

FAST = DaemonConfig(
    kpromoted_interval_s=0.001, kswapd_interval_s=0.001, hint_scan_interval_s=0.001
)


def make_machine(policy, dram=64, pm=256):
    return Machine(
        SimulationConfig(dram_pages=(dram,), pm_pages=(pm,), daemons=FAST), policy
    )


def resident(machine, process, vpage):
    machine.system.touch(process, vpage)
    return process.page_table.lookup(vpage)


def test_scanner_poisons_resident_ptes():
    machine = make_machine("autotiering-cpm")
    process = machine.create_process()
    process.mmap_anon(0, 16)
    ptes = [resident(machine, process, vpage) for vpage in range(8)]
    machine.policy._scanner.run(0)
    assert all(pte.poisoned for pte in ptes)
    assert machine.stats.get("hint.poisoned") == 8


def test_scanner_budget_respected():
    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(256,),
        daemons=DaemonConfig(hint_scan_budget_pages=4),
    )
    machine = Machine(config, "autotiering-cpm")
    process = machine.create_process()
    process.mmap_anon(0, 32)
    for vpage in range(16):
        resident(machine, process, vpage)
    machine.policy._scanner.run(0)
    assert machine.stats.get("hint.poisoned") == 4


def test_scanner_cursor_covers_all_pages_across_runs():
    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(256,),
        daemons=DaemonConfig(hint_scan_budget_pages=4),
    )
    machine = Machine(config, "autotiering-cpm")
    process = machine.create_process()
    process.mmap_anon(0, 32)
    ptes = [resident(machine, process, vpage) for vpage in range(12)]
    for __ in range(3):
        machine.policy._scanner.run(0)
    assert all(pte.poisoned for pte in ptes)


def test_hint_fault_charges_latency():
    machine = make_machine("autotiering-cpm")
    process = machine.create_process()
    process.mmap_anon(0, 8)
    resident(machine, process, 0)
    machine.policy._scanner.run(0)
    before = machine.clock.app_ns
    machine.system.touch(process, 0)
    assert machine.clock.app_ns - before > machine.system.hardware.hint_fault_ns()
    assert machine.stats.get("faults.hint") == 1


def test_cpm_promotes_only_into_free_dram():
    machine = make_machine("autotiering-cpm", dram=64, pm=256)
    process = machine.create_process()
    process.mmap_anon(0, 512)
    # Leave DRAM with room: a PM page fault promotes.
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(400, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    pte.poisoned = True
    machine.system.touch(process, 400)
    assert machine.system.tier_of(page) is MemoryTier.DRAM


def test_cpm_conservative_when_dram_full():
    machine = make_machine("autotiering-cpm", dram=16, pm=256)
    process = machine.create_process()
    process.mmap_anon(0, 512)
    dram = machine.system.nodes[0]
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        process.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(400, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    pte.poisoned = True
    machine.system.touch(process, 400)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert machine.stats.get("migrate.demotions") == 0


def test_opm_makes_room_by_demoting_cold_pages():
    machine = make_machine("autotiering-opm", dram=16, pm=256)
    process = machine.create_process()
    process.mmap_anon(0, 512)
    dram = machine.system.nodes[0]
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        page.policy_data = 0  # all-cold history
        process.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(400, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    pte.poisoned = True
    machine.system.touch(process, 400)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("opm.cold_demotions") >= 1


def test_opm_spares_warm_history_pages():
    machine = make_machine("autotiering-opm", dram=16, pm=256)
    process = machine.create_process()
    process.mmap_anon(0, 512)
    dram = machine.system.nodes[0]
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        page.policy_data = 0b0101  # warm history
        process.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(400, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    pte.poisoned = True
    machine.system.touch(process, 400)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert machine.stats.get("opm.cold_demotions") == 0


def test_opm_history_shift_and_set():
    machine = make_machine("autotiering-opm")
    process = machine.create_process()
    process.mmap_anon(0, 8)
    pte = resident(machine, process, 0)
    scanner: HintFaultScanner = machine.policy._scanner
    scanner.run(0)  # shift + poison
    machine.system.touch(process, 0)  # fault sets LSB
    assert (pte.page.policy_data or 0) & 1 == 1
    # Idle scans age the history toward zero.
    for __ in range(HISTORY_BITS):
        scanner.run(0)
        pte.poisoned = False  # never re-touched
    assert pte.page.policy_data == 0


def test_autonuma_is_cpm_like_without_history():
    machine = make_machine("autonuma")
    assert machine.policy.track_history is False
    assert machine.policy.make_room_on_promote is False
    names = {d.name for d in machine.scheduler.daemons}
    assert names == {"hint-scanner"}
