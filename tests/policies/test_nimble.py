"""Unit tests for the Nimble page-selection baseline."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.config import DaemonConfig, SimulationConfig


@pytest.fixture
def machine():
    return Machine(
        SimulationConfig(
            dram_pages=(64,),
            pm_pages=(256,),
            daemons=DaemonConfig(kpromoted_interval_s=0.001, kswapd_interval_s=0.001),
        ),
        "nimble",
    )


def pm_resident(machine, process, vpage):
    node = machine.system.nodes[1]
    page = node.allocate_page(is_anon=True)
    pte = process.page_table.map(vpage, page)
    node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    return page, pte


def run_promoter(machine):
    daemon = machine.scheduler.get("nimble-promote/1")
    return daemon.body(machine.clock.now_ns)


def test_daemons_promoter_on_pm_nodes_only(machine):
    names = {d.name for d in machine.scheduler.daemons}
    assert "nimble-promote/1" in names
    assert "nimble-promote/0" not in names
    assert "kswapd/0" in names  # recency demotion daemon


def test_single_reference_is_enough_to_promote(machine):
    """The crucial difference from MULTI-CLOCK: recency only, so one
    recent reference earns promotion on the next scan."""
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0)
    pte.accessed = True
    run_promoter(machine)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("nimble.promotions") == 1


def test_untouched_page_not_promoted(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, __ = pm_resident(machine, process, 0)
    run_promoter(machine)
    assert machine.system.tier_of(page) is MemoryTier.PM


def test_promotes_more_aggressively_than_multiclock():
    """Every PM page referenced once gets promoted by Nimble; MULTI-CLOCK
    requires the recency+frequency ladder, so it promotes none of them in
    a single scan round."""
    def build(policy):
        machine = Machine(
            SimulationConfig(dram_pages=(256,), pm_pages=(256,)), policy
        )
        process = machine.create_process()
        process.mmap_anon(0, 64)
        pages = []
        node = machine.system.nodes[1]
        for vpage in range(32):
            page = node.allocate_page(is_anon=True)
            pte = process.page_table.map(vpage, page)
            node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
            pte.accessed = True
            pages.append(page)
        return machine

    nimble = build("nimble")
    nimble.scheduler.get("nimble-promote/1").body(0)
    multiclock = build("multiclock")
    multiclock.policy._kpromoted[1].run(0)
    assert nimble.stats.get("migrate.promotions") == 32
    assert multiclock.stats.get("migrate.promotions") == 0


def test_promotion_into_full_dram_makes_room(machine):
    dram = machine.system.nodes[0]
    filler = machine.create_process()
    filler.mmap_anon(0, 128)
    vpage = 0
    while dram.can_allocate():
        page = dram.allocate_page(is_anon=True)
        filler.page_table.map(vpage, page)
        dram.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        vpage += 1
    process = machine.create_process()
    process.mmap_anon(0, 8)
    page, pte = pm_resident(machine, process, 0)
    pte.accessed = True
    run_promoter(machine)
    assert machine.system.tier_of(page) is MemoryTier.DRAM
    assert machine.stats.get("migrate.demotions") >= 1


def test_scan_budget_respected(machine):
    config = SimulationConfig(
        dram_pages=(512,),
        pm_pages=(512,),
        daemons=DaemonConfig(scan_budget_pages=8),
    )
    machine = Machine(config, "nimble")
    process = machine.create_process()
    process.mmap_anon(0, 128)
    node = machine.system.nodes[1]
    for vpage in range(64):
        page = node.allocate_page(is_anon=True)
        pte = process.page_table.map(vpage, page)
        node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        pte.accessed = True
    machine.scheduler.get("nimble-promote/1").body(0)
    assert machine.stats.get("migrate.promotions") <= 8
