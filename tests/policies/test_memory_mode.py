"""Unit tests for the Memory-mode (DRAM-as-cache) baseline."""

import pytest

from repro.machine import Machine
from repro.mm.hardware import MemoryTier
from repro.sim.config import LatencyConfig, SimulationConfig


@pytest.fixture
def machine():
    return Machine(SimulationConfig(dram_pages=(64,), pm_pages=(256,)), "memory-mode")


def test_all_allocations_land_in_pm(machine):
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for vpage in range(32):
        machine.touch(process, vpage)
    for vpage in range(32):
        page = process.page_table.lookup(vpage).page
        assert machine.system.tier_of(page) is MemoryTier.PM


def test_dram_capacity_hidden_from_os(machine):
    """Section II-B: the OS cannot use the DRAM tier's capacity."""
    assert machine.system.nodes[0].used_pages == 0
    process = machine.create_process()
    process.mmap_anon(0, 512)
    for vpage in range(100):
        machine.touch(process, vpage)
    assert machine.system.nodes[0].used_pages == 0
    assert machine.system.nodes[1].used_pages == 100


def test_first_access_misses_second_hits(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.touch(process, 0)
    assert machine.stats.get("memcache.misses") == 1
    machine.touch(process, 0)
    assert machine.stats.get("memcache.hits") == 1


def test_hit_cheaper_than_miss_and_near_dram(machine):
    from repro.policies.memory_mode import HIT_OVERHEAD_NS, TAG_PROBE_NS

    latency = LatencyConfig()
    process = machine.create_process()
    process.mmap_anon(0, 8)
    machine.touch(process, 0)  # miss (plus fault)
    before = machine.clock.app_ns
    machine.touch(process, 0)  # hit
    hit_ns = machine.clock.app_ns - before
    # A 2LM hit costs DRAM plus the controller/tag overhead, and stays
    # far below a raw PM read.
    assert hit_ns == latency.dram_read_ns + HIT_OVERHEAD_NS + TAG_PROBE_NS
    assert hit_ns < latency.pm_read_ns


def test_direct_mapped_conflicts_evict(machine):
    slots = machine.policy.cache_slots
    process = machine.create_process()
    process.mmap_anon(0, 4 * slots)
    # Two pages whose pfns collide in the direct map must exist among
    # slots+1 consecutively allocated pages (pigeonhole).
    for vpage in range(slots + 1):
        machine.touch(process, vpage)
    pfns = [process.page_table.lookup(v).page.pfn for v in range(slots + 1)]
    by_slot = {}
    conflict = None
    for vpage, pfn in enumerate(pfns):
        slot = pfn % slots
        if slot in by_slot:
            conflict = (by_slot[slot], vpage)
            break
        by_slot[slot] = vpage
    assert conflict is not None
    first, second = conflict
    machine.touch(process, first)
    machine.touch(process, second)  # evicts first
    misses = machine.stats.get("memcache.misses")
    machine.touch(process, first)  # conflict miss
    assert machine.stats.get("memcache.misses") == misses + 1


def test_dirty_eviction_writes_back(machine):
    slots = machine.policy.cache_slots
    process = machine.create_process()
    process.mmap_anon(0, 4 * slots)
    for vpage in range(slots + 1):
        machine.touch(process, vpage, is_write=True)
    assert machine.stats.get("memcache.writebacks") >= 1


def test_no_page_migrations_ever(machine):
    process = machine.create_process()
    process.mmap_anon(0, 512)
    for round_ in range(3):
        for vpage in range(150):
            machine.touch(process, vpage)
    assert machine.stats.get("migrate.promotions") == 0
    assert machine.stats.get("migrate.demotions") == 0


def test_hit_rate_reporting(machine):
    process = machine.create_process()
    process.mmap_anon(0, 8)
    assert machine.policy.hit_rate() == 0.0
    machine.touch(process, 0)
    machine.touch(process, 0)
    machine.touch(process, 0)
    assert machine.policy.hit_rate() == pytest.approx(2 / 3)
