#!/usr/bin/env python3
"""Every registered tiering policy side by side, with overhead breakdown.

Runs the same Tier-friendly workload under every registered policy
(including Memory-mode and the Section VII read/write-weighted
MULTI-CLOCK extension) and prints throughput, the app/system time split,
and the migration and fault counts behind each result.

Run:  python examples/policy_comparison.py
"""

from repro.analysis.report import render_table
from repro.experiments.common import scaled_config
from repro.policies.base import policy_names
from repro.run import run_workload
from repro.workloads.synthetic import ShiftingHotSetWorkload


def main() -> None:
    config = scaled_config(dram_pages=512, pm_pages=4096)

    def workload():
        return ShiftingHotSetWorkload(
            pages=2500, ops=150_000, phase_ops=50_000, hot_fraction=0.12, seed=5
        )

    rows = []
    for policy in policy_names():
        result = run_workload(workload(), config, policy=policy)
        total_ns = result.app_ns + result.system_ns
        system_pct = 100.0 * result.system_ns / total_ns if total_ns else 0.0
        rows.append(
            [
                policy,
                f"{result.throughput_ops:,.0f}",
                f"{100 * result.dram_access_fraction:.1f}%",
                result.promotions,
                result.demotions,
                result.counters.get("faults.hint", 0),
                f"{system_pct:.1f}%",
            ]
        )
        print(f"finished {policy}")

    rows.sort(key=lambda row: -float(row[1].replace(",", "")))
    print()
    print(
        render_table(
            ["policy", "ops/s", "DRAM hits", "promoted", "demoted",
             "hint faults", "system time"],
            rows,
        )
    )
    print(
        "\nReading the table: the CLOCK-based policies track access with "
        "reference bits (zero hint faults); the AutoNUMA family pays "
        "software faults for tracking; Memory-mode shows no migrations "
        "because its DRAM cache moves data in hardware."
    )


if __name__ == "__main__":
    main()
