#!/usr/bin/env python3
"""Workload E, the experiment the paper could not run.

YCSB's workload E is 95% SCAN operations; Memcached has no SCAN, so the
paper reports E as non-operational.  This example runs E against the
reproduction's scan-capable clustered store and shows the outcome the
paper's own locality argument predicts: range scans sweep fresh pages
with no re-use, so dynamic tiering has nothing to promote profitably and
static tiering wins — with MULTI-CLOCK degrading least among the dynamic
policies because its recency+frequency filter rejects most one-touch
scan pages.

Run:  python examples/workload_e_scans.py
"""

from repro.analysis.report import render_table
from repro.experiments.common import scaled_config
from repro.machine import Machine
from repro.run import run_workload
from repro.workloads.ycsb import YCSBSession

POLICIES = ("static", "multiclock", "nimble", "autotiering-opm")


def main() -> None:
    config = scaled_config(dram_pages=640, pm_pages=8192)
    print("back-end: clustered (sorted) store — SCAN walks adjacent pages")
    rows = []
    for policy in POLICIES:
        machine = Machine(config, policy)
        session = YCSBSession(4000, seed=3, backend="sorted")
        run_workload(session.load_phase(), config, machine=machine)
        result = run_workload(session.phase("E", ops=5000), config, machine=machine)
        rows.append([
            policy,
            f"{result.throughput_ops:,.0f}",
            f"{100 * result.dram_access_fraction:.1f}%",
            result.promotions,
        ])
        print(f"  ran E under {policy}")
    print()
    print(render_table(["policy", "scan ops/s", "DRAM hits", "promotions"], rows))

    print()
    print("for contrast, Memcached refuses E exactly as in the paper:")
    try:
        YCSBSession(100).phase("E", ops=1)
    except ValueError as error:
        print(f"  ValueError: {error}")


if __name__ == "__main__":
    main()
