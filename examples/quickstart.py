#!/usr/bin/env python3
"""Quickstart: simulate a hybrid-memory machine under MULTI-CLOCK.

Builds a small DRAM+PM machine, runs a skewed synthetic workload under
static tiering and under MULTI-CLOCK, and prints what the tiering policy
did: throughput, DRAM hit fraction, promotions/demotions, and the final
per-node list occupancy.

Run:  python examples/quickstart.py
"""

from repro import DaemonConfig, Machine, SimulationConfig, run_workload
from repro.workloads.synthetic import ShiftingHotSetWorkload


def main() -> None:
    config = SimulationConfig(
        dram_pages=(1024,),   # 4 MiB of "DRAM"
        pm_pages=(8192,),     # 32 MiB of "persistent memory"
        daemons=DaemonConfig(
            kpromoted_interval_s=0.005,  # scaled-down paper interval
            kswapd_interval_s=0.0025,
        ),
    )

    def workload():
        # A hot set that relocates over time: the pages Figure 1 calls
        # "Tier friendly" — exactly what dynamic tiering is for.
        return ShiftingHotSetWorkload(
            pages=4000, ops=200_000, phase_ops=50_000, hot_fraction=0.1, seed=7
        )

    print("running static tiering (baseline)...")
    static = run_workload(workload(), config, policy="static")
    print(" ", static.summary())

    print("running MULTI-CLOCK...")
    machine = Machine(config, "multiclock")
    multiclock = run_workload(workload(), config, machine=machine)
    print(" ", multiclock.summary())

    gain = multiclock.throughput_ops / static.throughput_ops - 1.0
    print(f"\nMULTI-CLOCK vs static tiering: {100 * gain:+.1f}% throughput")

    print("\nfinal memory layout (pages per LRU list):")
    for node, counts in machine.memory_report().items():
        lists = {k: v for k, v in counts.items() if v and k not in ("capacity", "used", "free")}
        print(f"  {node}: used {counts['used']}/{counts['capacity']}  {lists}")


if __name__ == "__main__":
    main()
