#!/usr/bin/env python3
"""Record a workload's access trace once, replay it under every policy.

Capturing a trace decouples workload generation from policy evaluation:
the expensive part (generating and running the workload) happens once,
and the recorded page-access stream then replays bit-identically under
any tiering policy or machine configuration — the standard methodology
for apples-to-apples policy studies.

Run:  python examples/trace_record_replay.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import render_table
from repro.experiments.common import scaled_config
from repro.run import run_workload
from repro.workloads.synthetic import ShiftingHotSetWorkload
from repro.workloads.trace import TraceRecorder, TraceReplayWorkload

POLICIES = ("static", "multiclock", "nimble", "memory-mode")


def main() -> None:
    config = scaled_config(dram_pages=512, pm_pages=4096)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "hotset.trace"

        workload = ShiftingHotSetWorkload(
            pages=2000, ops=120_000, phase_ops=40_000, hot_fraction=0.1, seed=9
        )
        print("recording trace under static tiering...")
        recorded = run_workload(TraceRecorder(workload, trace_path), config,
                                policy="static")
        size_kib = trace_path.stat().st_size / 1024
        print(f"  {recorded.accesses} accesses captured ({size_kib:.0f} KiB)")

        rows = []
        for policy in POLICIES:
            result = run_workload(TraceReplayWorkload(trace_path), config,
                                  policy=policy)
            rows.append([
                policy,
                f"{result.throughput_ops:,.0f}",
                f"{100 * result.dram_access_fraction:.1f}%",
                result.promotions,
            ])
            print(f"  replayed under {policy}")

        print()
        print("identical access stream, four policies:")
        print(render_table(["policy", "ops/s", "DRAM hits", "promotions"], rows))


if __name__ == "__main__":
    main()
