#!/usr/bin/env python3
"""Graph analytics (GAPBS-style) on a tiered-memory machine.

Builds an R-MAT graph whose footprint exceeds DRAM, loads it (the CSR
fills DRAM first, exactly as on the paper's testbed), then runs PageRank
and BFS trials under several policies, reporting per-trial execution
time — the paper's Figure 6 view — plus where each kernel's pages ended
up.

Run:  python examples/graph_analytics.py
"""

from repro.analysis.compare import normalize_exec_time
from repro.analysis.report import render_table
from repro.experiments.common import scaled_config
from repro.machine import Machine
from repro.run import run_workload
from repro.workloads.gapbs import Graph, KERNELS

POLICIES = ("static", "multiclock", "nimble")
KERNEL_NAMES = ("pr", "bfs")


def main() -> None:
    graph = Graph.rmat(scale=11, edge_factor=8, seed=7)
    print(f"graph: {graph.n} vertices, {graph.m_directed} directed edges")

    rows = []
    for kernel_name in KERNEL_NAMES:
        results = {}
        for policy in POLICIES:
            kernel = KERNELS[kernel_name](graph, trials=3, seed=3)
            config = scaled_config(
                dram_pages=max(24, int(kernel.footprint_pages() * 0.4)),
                pm_pages=kernel.footprint_pages() * 4,
                interval_s=0.1,
                scan_budget_pages=64,
            )
            machine = Machine(config, policy)
            run_workload(kernel.load_workload(), config, machine=machine)
            result = run_workload(kernel, config, machine=machine)
            results[policy] = result
            ms_per_trial = result.elapsed_seconds * 1000 / result.operations
            print(
                f"  {kernel_name} under {policy:>10}: {ms_per_trial:.3f} ms/trial "
                f"(virtual), {result.promotions} promotions"
            )
        comparison = normalize_exec_time(results)
        rows.append(
            [kernel_name] + [f"{comparison.values[p]:.3f}" for p in POLICIES]
        )

    print()
    print("execution time normalized to static tiering (lower is better):")
    print(render_table(["kernel", *POLICIES], rows))
    print(
        "\nGAPBS gains are smaller than YCSB's: the CSR fills DRAM in load "
        "order, so static placement is already decent — MULTI-CLOCK's edge "
        "comes from promoting the per-trial property arrays born in PM."
    )


if __name__ == "__main__":
    main()
