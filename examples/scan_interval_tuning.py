#!/usr/bin/env python3
"""Tuning kpromoted's scan interval (the paper's Figure 10 question).

Sweeps the scanning interval for MULTI-CLOCK on YCSB workload A and
prints the throughput curve: too-frequent scanning burns CPU on wakeups
and scans, too-rare scanning reacts late to working-set changes.  The
paper lands on one second for its testbed; the scaled simulator's
optimum sits at the corresponding point of its compressed time axis.

Run:  python examples/scan_interval_tuning.py
"""

from repro.analysis.report import render_bars
from repro.experiments.fig10_interval import PAPER_INTERVALS, run_fig10


def main() -> None:
    print("sweeping kpromoted intervals (paper-seconds):", PAPER_INTERVALS)
    sweeps = run_fig10(n_records=3000, ops=10_000)
    for policy, by_interval in sweeps.items():
        print(f"\n{policy} — YCSB A throughput by scan interval:")
        print(
            render_bars(
                {f"{interval}s": result.throughput_ops
                 for interval, result in sorted(by_interval.items())},
                unit=" ops/s",
            )
        )
    multiclock = sweeps["multiclock"]
    best = max(multiclock, key=lambda i: multiclock[i].throughput_ops)
    print(
        f"\nbest MULTI-CLOCK interval: {best}s (paper time) — an interior "
        "optimum: below it, wakeup and scan overhead dominates; above it, "
        "hot pages linger in PM while the daemon sleeps."
    )


if __name__ == "__main__":
    main()
