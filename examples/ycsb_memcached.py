#!/usr/bin/env python3
"""YCSB over a simulated Memcached, across tiering policies.

Reproduces the paper's Section V-C1 methodology end to end: load the
key-value store (footprint larger than DRAM), then run the prescribed
workload sequence A, B, C, F, W, D on the same warm machine, for each
policy, and print per-workload throughput normalized to static tiering —
the paper's Figure 5 view.

Run:  python examples/ycsb_memcached.py
"""

from repro.analysis.compare import normalize_throughput
from repro.analysis.report import render_table
from repro.experiments.common import run_ycsb_sequence, scaled_config
from repro.workloads.ycsb import EXECUTION_SEQUENCE

POLICIES = ("static", "multiclock", "nimble", "autotiering-opm")
N_RECORDS = 4000
OPS_PER_PHASE = 8000


def main() -> None:
    config = scaled_config(dram_pages=640, pm_pages=8192)
    print(
        f"store: {N_RECORDS} records (~{N_RECORDS} KiB values), "
        f"DRAM {config.total_dram_pages} pages, PM {config.total_pm_pages} pages"
    )
    per_policy = {}
    for policy in POLICIES:
        print(f"running sequence under {policy}...")
        per_policy[policy] = run_ycsb_sequence(
            policy, config, n_records=N_RECORDS, ops_per_phase=OPS_PER_PHASE
        )

    rows = []
    for phase in EXECUTION_SEQUENCE:
        comparison = normalize_throughput(
            {policy: per_policy[policy][phase] for policy in POLICIES}
        )
        rows.append(
            [phase]
            + [f"{comparison.values[policy]:.3f}" for policy in POLICIES]
            + [f"{per_policy['multiclock'][phase].promotions}"]
        )
    print()
    print("throughput normalized to static tiering (higher is better):")
    print(render_table(["workload", *POLICIES, "mc promotions"], rows))

    best = max(
        EXECUTION_SEQUENCE,
        key=lambda phase: normalize_throughput(
            {p: per_policy[p][phase] for p in POLICIES}
        ).values["multiclock"],
    )
    print(
        f"\nMULTI-CLOCK's biggest win: workload {best}. The paper's was D "
        "(it inserts new records into PM and re-reads them — the strongest "
        "Tier-friendly behaviour); write-only W competes closely here "
        "because PM's effective write cost makes misplaced written pages "
        "expensive."
    )


if __name__ == "__main__":
    main()
